"""Root-cause chains: attribute each SLA violation to its likely cause.

Every ``sla_violation`` record marks an epoch where queries missed the
latency bound, but the *why* lives earlier in the stream: a server
failure that thinned the replica fleet, a lost-partition restore
serving from a cold single copy, a replication storm saturating
bandwidth, or an overload the policy saw but whose actions the gates
refused.  Leslie's DHT storage study (arXiv:cs/0507072) ties exactly
these maintenance-traffic bursts to churn events; this module walks
backwards within an epoch window and scores the candidates.

Scoring is deliberately simple and deterministic: each cause kind has a
base weight, each contributing event decays geometrically with its lag
from the violation, and the winner's **confidence** is its share of the
total score mass.  A violation with no candidate in the window is
``unattributed`` at confidence zero — honest, and itself a signal that
the window is too small or the cause is exogenous (plain load).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ...sim.reasons import (
    CAUSE_LOST_PARTITION_RESTORE,
    CAUSE_OVERLOAD_UNMITIGATED,
    CAUSE_REPLICATION_STORM,
    CAUSE_SERVER_FAILURE,
    CAUSE_UNATTRIBUTED,
)
from ..trace import TraceEvent

__all__ = [
    "CAUSE_WEIGHTS",
    "Attribution",
    "CauseSummary",
    "attribute_violations",
    "top_causes",
]

#: Base weight per cause kind.  Failures dominate restores (a restore is
#: the *consequence* of a failure burst and only wins when failures have
#: scrolled out of the window); storms and unmitigated overloads are
#: weaker signals that win only when nothing structural happened.
CAUSE_WEIGHTS: dict[str, float] = {
    CAUSE_SERVER_FAILURE: 3.0,
    CAUSE_LOST_PARTITION_RESTORE: 2.0,
    CAUSE_REPLICATION_STORM: 1.0,
    CAUSE_OVERLOAD_UNMITIGATED: 1.0,
}

#: Per-epoch-of-lag geometric decay applied to every contribution.
LAG_DECAY = 0.85


@dataclass(frozen=True)
class Attribution:
    """One SLA-violation epoch and its ranked cause."""

    epoch: int
    misses: float
    cause: str
    confidence: float
    lag: int | None
    detail: str
    scores: dict[str, float]


@dataclass(frozen=True)
class CauseSummary:
    """Aggregate row of the ranked top-causes table."""

    cause: str
    violations: int
    misses: float
    mean_confidence: float
    median_lag: float | None


def _index_by_epoch(events: Sequence[TraceEvent]) -> dict[str, dict[int, float]]:
    """Per-epoch magnitudes of every candidate signal."""
    failures: dict[int, float] = {}
    restores: dict[int, float] = {}
    actions: dict[int, float] = {}
    skipped: dict[int, float] = {}
    for event in events:
        if event.kind == "server_failure":
            lost = event.extra.get("replicas_lost", 0)
            weight = 1.0 + float(lost if isinstance(lost, (int, float)) else 0.0)
            failures[event.epoch] = failures.get(event.epoch, 0.0) + weight
        elif event.kind == "partition_restore":
            restores[event.epoch] = restores.get(event.epoch, 0.0) + 1.0
        elif event.kind in ("replicate", "migrate"):
            actions[event.epoch] = actions.get(event.epoch, 0.0) + 1.0
        elif event.kind == "action_skipped":
            skipped[event.epoch] = skipped.get(event.epoch, 0.0) + 1.0
    return {
        CAUSE_SERVER_FAILURE: failures,
        CAUSE_LOST_PARTITION_RESTORE: restores,
        CAUSE_REPLICATION_STORM: actions,
        CAUSE_OVERLOAD_UNMITIGATED: skipped,
    }


def _windowed_score(
    series: dict[int, float], epoch: int, window: int
) -> tuple[float, int | None]:
    """Decayed sum over ``[epoch - window, epoch]`` plus the nearest lag."""
    total = 0.0
    nearest: int | None = None
    for e in range(max(0, epoch - window), epoch + 1):
        magnitude = series.get(e)
        if not magnitude:
            continue
        lag = epoch - e
        total += magnitude * (LAG_DECAY**lag)
        if nearest is None or lag < nearest:
            nearest = lag
    return total, nearest


def attribute_violations(
    events: Iterable[TraceEvent], *, window: int = 20
) -> list[Attribution]:
    """One :class:`Attribution` per ``sla_violation`` event, in order.

    ``window`` is the look-back horizon in epochs.  The replication-rate
    signal is normalised against the whole-run mean so that the steady
    background of availability replication does not register as a storm
    under every violation.
    """
    stream = list(events)
    index = _index_by_epoch(stream)
    violations = [e for e in stream if e.kind == "sla_violation"]
    if not violations:
        return []

    # Baseline replication rate: a storm only scores for its *excess*.
    action_series = index[CAUSE_REPLICATION_STORM]
    epochs_seen = {e.epoch for e in stream}
    span = max(1, len(epochs_seen))
    mean_actions = sum(action_series.values()) / span

    out: list[Attribution] = []
    for violation in violations:
        misses = float(violation.extra.get("count", 1.0))  # type: ignore[arg-type]
        scores: dict[str, float] = {}
        lags: dict[str, int | None] = {}
        for cause, series in index.items():
            raw, lag = _windowed_score(series, violation.epoch, window)
            if cause == CAUSE_REPLICATION_STORM:
                # Subtract the decayed baseline so steady traffic scores 0.
                baseline = mean_actions * sum(
                    LAG_DECAY**k for k in range(window + 1)
                )
                raw = max(0.0, raw - baseline)
                if raw <= 0.0:
                    lag = None
            scores[cause] = CAUSE_WEIGHTS[cause] * raw
            lags[cause] = lag
        total = sum(scores.values())
        if total <= 0.0:
            out.append(
                Attribution(
                    epoch=violation.epoch,
                    misses=misses,
                    cause=CAUSE_UNATTRIBUTED,
                    confidence=0.0,
                    lag=None,
                    detail=f"no candidate cause within {window} epochs",
                    scores=scores,
                )
            )
            continue
        winner = max(scores, key=lambda c: (scores[c], c))
        out.append(
            Attribution(
                epoch=violation.epoch,
                misses=misses,
                cause=winner,
                confidence=scores[winner] / total,
                lag=lags[winner],
                detail=_describe(winner, lags[winner]),
                scores=scores,
            )
        )
    return out


def _describe(cause: str, lag: int | None) -> str:
    where = "same epoch" if lag == 0 else f"{lag} epochs earlier" if lag else "in window"
    return {
        CAUSE_SERVER_FAILURE: f"server failure {where}",
        CAUSE_LOST_PARTITION_RESTORE: f"lost-partition restore {where}",
        CAUSE_REPLICATION_STORM: f"replication traffic above baseline ({where})",
        CAUSE_OVERLOAD_UNMITIGATED: f"actions gated/skipped under load ({where})",
    }.get(cause, cause)


def top_causes(attributions: Sequence[Attribution]) -> list[CauseSummary]:
    """Ranked aggregate: most-blamed cause first (by attributed misses,
    then violation count)."""
    grouped: dict[str, list[Attribution]] = {}
    for attribution in attributions:
        grouped.setdefault(attribution.cause, []).append(attribution)
    rows: list[CauseSummary] = []
    for cause, group in grouped.items():
        lags = sorted(a.lag for a in group if a.lag is not None)
        median_lag = float(lags[len(lags) // 2]) if lags else None
        rows.append(
            CauseSummary(
                cause=cause,
                violations=len(group),
                misses=sum(a.misses for a in group),
                mean_confidence=sum(a.confidence for a in group) / len(group),
                median_lag=median_lag,
            )
        )
    rows.sort(key=lambda r: (-r.misses, -r.violations, r.cause))
    return rows
