"""Standard-format exporters: Chrome trace-event JSON and Prometheus text.

Two interchange formats every tooling ecosystem already reads:

* **Chrome trace-event JSON** (the Trace Event Format consumed by
  Perfetto and ``chrome://tracing``): phase-profiler epochs become
  ``"X"`` complete events on a timeline, engine trace events become
  ``"i"`` instant events grouped per policy (process) and per event
  kind (thread), so a whole run can be scrubbed visually.
* **Prometheus text exposition** (``# HELP`` / ``# TYPE`` + samples):
  an :class:`~repro.obs.registry.InstrumentRegistry` snapshot rendered
  as counters, gauges and summaries, scrape-ready or pushable to a
  gateway.

:func:`registry_from_events` rebuilds a registry from a raw JSONL
trace, so a file on disk can be exported to Prometheus format without
re-running the simulation.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Sequence

from ..profiler import ENGINE_PHASES, PhaseProfiler
from ..registry import InstrumentRegistry
from ..trace import TraceEvent

__all__ = [
    "chrome_trace_from_events",
    "chrome_trace_from_profiler",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "registry_from_events",
]

#: Microseconds of timeline allotted to one epoch for instant events
#: (epochs are logical time; any fixed scale makes lags readable).
EPOCH_US = 1000.0


def chrome_trace_from_events(
    events: Iterable[TraceEvent], *, epoch_us: float = EPOCH_US
) -> list[dict[str, object]]:
    """Instant (``"i"``) trace events on an epoch timeline.

    Policies map to processes and event kinds to threads, with ``"M"``
    metadata records naming both, so Perfetto's track labels read
    ``rfh / migrate`` instead of ``pid 1 / tid 3``.
    """
    out: list[dict[str, object]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for event in events:
        policy = event.policy or "unknown"
        pid = pids.get(policy)
        if pid is None:
            pid = pids[policy] = len(pids) + 1
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": policy},
                }
            )
        tid_key = (policy, event.kind)
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = sum(1 for key in tids if key[0] == policy) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.kind},
                }
            )
        args: dict[str, object] = {
            "epoch": event.epoch,
            "reason": event.reason,
        }
        if event.server is not None:
            args["server"] = event.server
        if event.partition is not None:
            args["partition"] = event.partition
        if event.cost:
            args["cost"] = event.cost
        args.update(event.extra)
        out.append(
            {
                "name": f"{event.kind}:{event.reason}" if event.reason else event.kind,
                "cat": event.kind,
                "ph": "i",
                "s": "t",  # thread-scoped instant tick
                "ts": event.epoch * epoch_us,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return out


def chrome_trace_from_profiler(
    profiler: PhaseProfiler, *, pid: int = 0
) -> list[dict[str, object]]:
    """Complete (``"X"``) events per profiled epoch phase, laid end to
    end in real (wall-clock) durations so Perfetto shows where each
    epoch's time went."""
    samples = {name: list(profiler._samples.get(name, ())) for name in ENGINE_PHASES}
    epochs = min((len(s) for s in samples.values()), default=0)
    out: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "engine phases"},
        }
    ]
    ts = 0.0
    for epoch in range(epochs):
        for phase in ENGINE_PHASES:
            duration_us = samples[phase][epoch] * 1e6
            out.append(
                {
                    "name": phase,
                    "cat": "phase",
                    "ph": "X",
                    "ts": ts,
                    "dur": duration_us,
                    "pid": pid,
                    "tid": 0,
                    "args": {"epoch": epoch},
                }
            )
            ts += duration_us
    return out


def to_chrome_trace(
    events: Iterable[TraceEvent] = (),
    profiler: PhaseProfiler | None = None,
    *,
    epoch_us: float = EPOCH_US,
) -> dict[str, object]:
    """The full trace-event JSON object (``{"traceEvents": [...]}``)."""
    trace_events = chrome_trace_from_events(events, epoch_us=epoch_us)
    if profiler is not None:
        trace_events.extend(chrome_trace_from_profiler(profiler))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.analysis"},
    }


def write_chrome_trace(
    path: str | pathlib.Path,
    events: Iterable[TraceEvent] = (),
    profiler: PhaseProfiler | None = None,
) -> int:
    """Write :func:`to_chrome_trace` to ``path``; returns event count."""
    payload = to_chrome_trace(events, profiler)
    pathlib.Path(path).write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    return len(payload["traceEvents"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: HELP strings for the instrument families the engine maintains.
_HELP: dict[str, str] = {
    "actions_total": "Applied replication actions by kind, rule and policy.",
    "actions_skipped_total": "Actions refused by an engine gate, by gate.",
    "membership_events_total": "Server failures, recoveries and joins.",
    "partitions_restored_total": "Cold restores of partitions that lost every copy.",
    "sla_miss_total": "Queries served above the latency bound.",
    "trace_events_total": "Trace records consumed, by kind.",
    "trace_events_dropped_total": "Trace events evicted by a full ring buffer.",
    "replica_lifetime_epochs": "Lifetime of dead replicas, in epochs.",
    "total_replicas": "Live replica copies across the fleet.",
    "alive_servers": "Servers currently up.",
}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    return f"{value:g}"


def to_prometheus(
    registry: InstrumentRegistry | dict[str, list[dict[str, object]]],
) -> str:
    """Render a registry (or its ``snapshot()``) as Prometheus text
    exposition format, version 0.0.4.

    Counters and gauges map directly; histograms render as summaries
    (``{quantile="0.5"}`` / ``{quantile="0.95"}`` plus ``_sum`` and
    ``_count`` series), which is the faithful encoding of the
    registry's nearest-rank quantile snapshots.
    """
    snapshot = registry.snapshot() if isinstance(registry, InstrumentRegistry) else registry
    lines: list[str] = []

    def header(name: str, kind: str) -> None:
        lines.append(f"# HELP {name} {_HELP.get(name, 'repro instrument.')}")
        lines.append(f"# TYPE {name} {kind}")

    def families(rows: Sequence[dict[str, object]]) -> dict[str, list[dict[str, object]]]:
        grouped: dict[str, list[dict[str, object]]] = {}
        for row in rows:
            grouped.setdefault(str(row["name"]), []).append(row)
        return grouped

    for name, rows in sorted(families(snapshot.get("counters", ())).items()):
        header(name, "counter")
        for row in rows:
            labels = _label_text(row.get("labels", {}))  # type: ignore[arg-type]
            lines.append(f"{name}{labels} {_fmt_value(float(row['value']))}")  # type: ignore[arg-type]

    for name, rows in sorted(families(snapshot.get("gauges", ())).items()):
        header(name, "gauge")
        for row in rows:
            labels = _label_text(row.get("labels", {}))  # type: ignore[arg-type]
            lines.append(f"{name}{labels} {_fmt_value(float(row['value']))}")  # type: ignore[arg-type]

    for name, rows in sorted(families(snapshot.get("histograms", ())).items()):
        header(name, "summary")
        for row in rows:
            labels: dict[str, str] = row.get("labels", {})  # type: ignore[assignment]
            for quantile in ("0.5", "0.95"):
                key = "p50" if quantile == "0.5" else "p95"
                lines.append(
                    f"{name}{_label_text(labels, {'quantile': quantile})} "
                    f"{_fmt_value(float(row[key]))}"  # type: ignore[arg-type]
                )
            lines.append(
                f"{name}_sum{_label_text(labels)} {_fmt_value(float(row['sum']))}"  # type: ignore[arg-type]
            )
            lines.append(
                f"{name}_count{_label_text(labels)} {_fmt_value(float(row['count']))}"  # type: ignore[arg-type]
            )

    return "\n".join(lines) + "\n"


def registry_from_events(events: Iterable[TraceEvent]) -> InstrumentRegistry:
    """Rebuild the engine's counter families from a raw event stream, so
    a JSONL trace on disk can be exported without re-running anything.

    The reconstruction covers everything derivable from the trace:
    action/skip/membership/restore/SLA counters plus the
    ``replica_lifetime_epochs`` histogram re-stitched via lineage.
    Gauges (instantaneous fleet state) are not recoverable from events
    and are omitted.
    """
    from .lineage import build_lineage

    registry = InstrumentRegistry()
    per_policy: dict[str, list[TraceEvent]] = {}
    for event in events:
        policy = event.policy or "unknown"
        per_policy.setdefault(policy, []).append(event)
        registry.counter("trace_events_total", kind=event.kind).inc()
        if event.kind in ("replicate", "migrate", "suicide"):
            registry.counter(
                "actions_total", kind=event.kind, reason=event.reason, policy=policy
            ).inc()
        elif event.kind == "action_skipped":
            registry.counter(
                "actions_skipped_total",
                kind=str(event.extra.get("action", "unknown")),
                cause=str(event.extra.get("cause", "unknown")),
            ).inc()
        elif event.kind in ("server_failure", "server_recovery", "server_join"):
            registry.counter("membership_events_total", kind=event.kind).inc()
        elif event.kind == "partition_restore":
            registry.counter("partitions_restored_total").inc()
        elif event.kind == "sla_violation":
            count = event.extra.get("count", 1.0)
            registry.counter("sla_miss_total", policy=policy).inc(
                float(count if isinstance(count, (int, float)) else 1.0)
            )
    for policy, stream in per_policy.items():
        lineage = build_lineage(stream)
        histogram = registry.histogram("replica_lifetime_epochs", policy=policy)
        for lifetime in lineage.stay_lifetimes():
            histogram.observe(float(lifetime))
    return registry
