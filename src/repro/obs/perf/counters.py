"""The work-counter cost model: hardware-independent units of work.

Wall-clock alone cannot compare the epoch hot path across machines, nor
across the coming DES -> columnar -> mean-field backends (ROADMAP items
1-2): a 2x speedup on one laptop is invisible next to a 3x machine
difference.  :class:`WorkCounters` counts the *units of work* the
engine performs instead — partitions scanned by the service walk,
decision-tree evaluations, applied replicate/migrate/evict actions,
RNG draws per stream, ring lookups and WAN graph hops — numbers that
are bit-identical across same-seed runs on any machine, so a change in
them is an algorithmic change, never noise.

The counters are plain integer attributes incremented behind
``if work is not None`` guards on the hot path (the disabled path pays
one predictable branch per site).  Attach them through the engine::

    work = WorkCounters()
    sim = Simulation(config, work=work)
    sim.run(200)
    print(work.totals())

With a time-series recorder attached the engine also samples the
per-epoch deltas as ``work/<name>`` columns, so ``repro diff`` and
``repro dashboard`` see cost next to every quality metric.
"""

from __future__ import annotations

__all__ = ["WorkCounters", "WORK_COUNTER_NAMES"]

#: The fixed scalar counters, in reporting order.  ``rng_draws/<stream>``
#: columns join them dynamically, one per stream that drew.
WORK_COUNTER_NAMES: tuple[str, ...] = (
    "partitions_scanned",
    "decisions_evaluated",
    "replicate_actions",
    "migrate_actions",
    "evict_actions",
    "ring_lookups",
    "graph_hops",
)


class WorkCounters:
    """Deterministic work counters threaded through the epoch hot path.

    Lifetime totals accumulate monotonically; :meth:`epoch_deltas`
    returns the work done since its previous call (the engine calls it
    once per epoch to fill the ``work/<name>`` time-series columns).
    """

    __slots__ = (
        "partitions_scanned",
        "decisions_evaluated",
        "replicate_actions",
        "migrate_actions",
        "evict_actions",
        "ring_lookups",
        "graph_hops",
        "rng_draws",
        "_baseline",
    )

    def __init__(self) -> None:
        self.partitions_scanned = 0
        self.decisions_evaluated = 0
        self.replicate_actions = 0
        self.migrate_actions = 0
        self.evict_actions = 0
        self.ring_lookups = 0
        self.graph_hops = 0
        #: Method invocations per named RNG stream (see
        #: :meth:`repro.sim.rng.RngTree.attach_draw_counter`).
        self.rng_draws: dict[str, int] = {}
        self._baseline: dict[str, float] = {}

    # ------------------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Lifetime totals as a flat ``{name: value}`` mapping.

        Stream draws appear as ``rng_draws/<stream>``, sorted by stream
        name so the mapping itself is deterministic.
        """
        out: dict[str, float] = {
            name: float(getattr(self, name)) for name in WORK_COUNTER_NAMES
        }
        for stream in sorted(self.rng_draws):
            out[f"rng_draws/{stream}"] = float(self.rng_draws[stream])
        return out

    def epoch_deltas(self) -> dict[str, float]:
        """Work done since the previous call (the per-epoch sample)."""
        totals = self.totals()
        deltas = {
            name: value - self._baseline.get(name, 0.0)
            for name, value in totals.items()
        }
        self._baseline = totals
        return deltas

    def reset(self) -> None:
        """Zero every counter (totals and the per-epoch baseline)."""
        for name in WORK_COUNTER_NAMES:
            setattr(self, name, 0)
        self.rng_draws.clear()
        self._baseline.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in WORK_COUNTER_NAMES
            if getattr(self, name)
        )
        return f"WorkCounters({parts})"
