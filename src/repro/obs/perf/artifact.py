"""The versioned ``.prof.json`` profile artifact and its exporters.

One :class:`PerfProfile` bundles everything a profiling session
measured — per-phase wall-clock summaries, the kernel/function call
tree, the work-counter totals and the allocation accounting — into a
single versioned JSON document (``format: repro-prof``), mirroring the
``repro-tsdb`` artifact convention: a loader that validates format and
version, and renderers that never need the live run again.

Exporters:

* :meth:`PerfProfile.collapsed` — Brendan-Gregg collapsed-stack text
  (``a;b;c <self-microseconds>`` per line), pipeable into any external
  flamegraph tooling;
* :meth:`PerfProfile.speedscope` — a speedscope-compatible
  ``sampled``-type document (https://www.speedscope.app loads it
  directly);
* the self-contained flamegraph HTML lives in
  :mod:`repro.obs.perf.flamegraph` (zero external references, same
  contract as ``repro dashboard``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from ...errors import ReproError

__all__ = ["PerfProfile", "ProfileError", "PROF_FORMAT", "PROF_VERSION"]

PROF_FORMAT = "repro-prof"
PROF_VERSION = 1


class ProfileError(ReproError):
    """A profile artifact could not be read or is malformed."""


@dataclass
class PerfProfile:
    """One profiling session's complete, serialisable measurement.

    Attributes
    ----------
    meta:
        Run identity (policy, scenario, seed, epochs, profiler mode).
    phases:
        Per engine phase: ``{count, total, mean, p50, p95}`` seconds
        (the :class:`~repro.obs.profiler.PhaseStats` dict shape).
    nodes:
        The call tree: ``{stack: [...], count, total_s, self_s}`` per
        distinct stack path, sorted by path.
    counters:
        Work-counter totals (``partitions_scanned``,
        ``rng_draws/<stream>``, ...), hardware-independent.
    allocations:
        ``{"phase_bytes": {phase: net_bytes}, "top_sites": [...]}``
        from tracemalloc; empty dicts/lists when allocation accounting
        was off.
    """

    meta: dict[str, object] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    nodes: list[dict[str, object]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    allocations: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format": PROF_FORMAT,
            "version": PROF_VERSION,
            "meta": self.meta,
            "phases": self.phases,
            "nodes": self.nodes,
            "counters": self.counters,
            "allocations": self.allocations,
        }

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=1) + "\n")

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "PerfProfile":
        if not isinstance(payload, dict):
            raise ProfileError("profile artifact is not a JSON object")
        if payload.get("format") != PROF_FORMAT:
            raise ProfileError(
                f"not a {PROF_FORMAT} artifact (format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version != PROF_VERSION:
            raise ProfileError(
                f"unsupported {PROF_FORMAT} version {version!r} "
                f"(this build reads version {PROF_VERSION})"
            )
        return cls(
            meta=dict(payload.get("meta") or {}),
            phases=dict(payload.get("phases") or {}),
            nodes=list(payload.get("nodes") or []),
            counters=dict(payload.get("counters") or {}),
            allocations=dict(payload.get("allocations") or {}),
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "PerfProfile":
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except OSError as exc:
            raise ProfileError(f"cannot read {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ProfileError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Wall-clock across the root stacks (depth-1 node totals)."""
        return sum(
            float(node["total_s"]) for node in self.nodes if len(node["stack"]) == 1
        )

    def stack_keys(self) -> list[str]:
        """Every stack path as a ``a;b;c`` string, sorted."""
        return sorted(";".join(node["stack"]) for node in self.nodes)

    def hottest(self, top_n: int = 10) -> list[dict[str, object]]:
        """Nodes ranked by self-time, hottest first."""
        ranked = sorted(self.nodes, key=lambda n: -float(n["self_s"]))
        return ranked[:top_n]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c <self-us>`` line per stack.

        Zero-weight stacks are kept — the *shape* of the tree (which
        stacks exist) is the deterministic part two same-seed runs must
        agree on, and dropping cold stacks would make that comparison
        depend on timer jitter.
        """
        lines = [
            f"{';'.join(node['stack'])} {max(0, round(float(node['self_s']) * 1e6))}"
            for node in self.nodes
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self) -> dict[str, object]:
        """A speedscope ``sampled`` profile document (JSON-ready)."""
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        for node in self.nodes:
            self_s = float(node["self_s"])
            stack_ids = []
            for label in node["stack"]:
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                stack_ids.append(frame_index[label])
            if self_s > 0.0:
                samples.append(stack_ids)
                weights.append(self_s)
        total = sum(weights)
        name = str(self.meta.get("name") or self.meta.get("policy") or "repro")
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": f"repro profile: {name}",
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": f"{PROF_FORMAT} v{PROF_VERSION}",
        }

    def save_speedscope(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.speedscope(), separators=(",", ":")) + "\n"
        )
