"""Performance observability: profile, count, account, attribute.

The instrument panel for the ROADMAP's hot-path optimisation arc, in
four parts (DESIGN.md "Performance observability"):

* :mod:`repro.obs.perf.profiler` — a deterministic instrumented
  profiler (:class:`HotPathProfiler`: engine phases + nested kernel
  spans whose tree shape is seed-determined) and an optional
  ``sys.setprofile`` mode (:class:`TraceProfiler`) for per-function
  attribution;
* :mod:`repro.obs.perf.counters` — :class:`WorkCounters`, a
  hardware-independent work/cost model (partitions scanned, decisions
  evaluated, actions applied, RNG draws per stream, ring lookups,
  graph hops) recorded per epoch into ``.tsdb.json`` frames;
* allocation accounting via ``tracemalloc`` (per-phase net bytes and
  top-N sites, folded into the artifact);
* :mod:`repro.obs.perf.artifact` + :mod:`repro.obs.perf.diffing` — the
  versioned ``.prof.json`` artifact, collapsed-stack / speedscope /
  flamegraph exporters, and the ``repro perfdiff`` attribution differ.

Typical use::

    from repro.obs.perf import profile_scenario, diff_profiles
    profile = profile_scenario("rfh", scenario)
    profile.save("run.prof.json")

or from the command line::

    python -m repro profile --policy rfh --epochs 120 --out run.prof.json
    python -m repro perfdiff base.prof.json run.prof.json
"""

from .artifact import PROF_FORMAT, PROF_VERSION, PerfProfile, ProfileError
from .counters import WORK_COUNTER_NAMES, WorkCounters
from .diffing import (
    PerfDelta,
    PerfDiffReport,
    diff_profiles,
    render_perfdiff_json,
    render_perfdiff_text,
)
from .flamegraph import render_flamegraph
from .profiler import HotPathProfiler, TraceProfiler, span_node_records
from .session import PROFILE_MODES, build_profile, profile_scenario

__all__ = [
    "PROF_FORMAT",
    "PROF_VERSION",
    "PROFILE_MODES",
    "PerfDelta",
    "PerfDiffReport",
    "PerfProfile",
    "ProfileError",
    "HotPathProfiler",
    "TraceProfiler",
    "WORK_COUNTER_NAMES",
    "WorkCounters",
    "build_profile",
    "diff_profiles",
    "profile_scenario",
    "render_flamegraph",
    "render_perfdiff_json",
    "render_perfdiff_text",
    "span_node_records",
]
