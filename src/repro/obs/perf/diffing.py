"""Perf-regression attribution: diff two ``.prof.json`` artifacts.

``repro diff`` can say a run got slower; this differ says *where*.  It
compares two :class:`~repro.obs.perf.artifact.PerfProfile` artifacts
three ways:

* **phases** — total wall-clock per engine phase;
* **nodes**  — self-time per stack path (the kernel spans or traced
  functions), which is the line a fix would edit;
* **counters** — the hardware-independent work counters.

Timing comparisons gate (``exit_code() == 1`` on any regression beyond
tolerance) because that is what CI wants to block on.  Counter changes
are *reported but neutral by default*: more work at equal output is an
algorithmic observation, not automatically a regression — pass
``gate_counters=True`` (CLI ``--gate-counters``) to make counter growth
gate too.  Timing tolerances default wide (25% + 2 ms) because
wall-clock is noisy across CI machines; counters compare near-exactly
because they are deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .artifact import PerfProfile

__all__ = [
    "PerfDelta",
    "PerfDiffReport",
    "diff_profiles",
    "render_perfdiff_json",
    "render_perfdiff_text",
]

#: Classification buckets, in report order.
_ORDER = {"regressed": 0, "improved": 1, "changed": 2, "unchanged": 3}


@dataclass(frozen=True)
class PerfDelta:
    """One compared quantity (a phase, a stack node or a counter)."""

    kind: str  # "phase" | "node" | "counter"
    name: str
    base: float
    cand: float
    classification: str  # "regressed" | "improved" | "changed" | "unchanged"

    @property
    def delta(self) -> float:
        return self.cand - self.base

    @property
    def ratio(self) -> float:
        """cand/base (inf-free: 0 base with any growth reports 0.0)."""
        return self.cand / self.base if self.base > 0 else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "base": self.base,
            "cand": self.cand,
            "delta": self.delta,
            "classification": self.classification,
        }


@dataclass
class PerfDiffReport:
    """Everything :func:`diff_profiles` concluded, renderer-ready."""

    deltas: list[PerfDelta]
    meta_base: dict[str, object] = field(default_factory=dict)
    meta_cand: dict[str, object] = field(default_factory=dict)
    gate_counters: bool = False

    def of_kind(self, kind: str) -> list[PerfDelta]:
        return [d for d in self.deltas if d.kind == kind]

    def regressions(self) -> list[PerfDelta]:
        """Gating regressions, worst absolute slowdown first."""
        gating = [
            d
            for d in self.deltas
            if d.classification == "regressed"
            and (d.kind != "counter" or self.gate_counters)
        ]
        return sorted(gating, key=lambda d: (-abs(d.delta), d.name))

    def exit_code(self) -> int:
        return 1 if self.regressions() else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "meta_base": self.meta_base,
            "meta_cand": self.meta_cand,
            "gate_counters": self.gate_counters,
            "regressed": len(self.regressions()),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _classify_time(
    base: float, cand: float, rel_tol: float, abs_tol_s: float
) -> str:
    allowance = max(abs_tol_s, rel_tol * base)
    delta = cand - base
    if delta > allowance:
        return "regressed"
    if delta < -allowance:
        return "improved"
    return "unchanged"


def _classify_counter(
    base: float, cand: float, rel_tol: float, abs_tol: float
) -> str:
    if abs(cand - base) <= max(abs_tol, rel_tol * abs(base)):
        return "unchanged"
    return "changed"


def diff_profiles(
    base: PerfProfile,
    cand: PerfProfile,
    *,
    rel_tol: float = 0.25,
    abs_tol_s: float = 0.002,
    counter_rel_tol: float = 0.0,
    counter_abs_tol: float = 0.0,
    gate_counters: bool = False,
) -> PerfDiffReport:
    """Compare ``cand`` against ``base`` and classify every quantity.

    Quantities present on only one side are compared against zero —
    a new stack burning real time is exactly the regression the differ
    exists to name.
    """
    deltas: list[PerfDelta] = []

    base_phases = {name: float(s.get("total", 0.0)) for name, s in base.phases.items()}
    cand_phases = {name: float(s.get("total", 0.0)) for name, s in cand.phases.items()}
    for name in sorted(base_phases | cand_phases):
        b, c = base_phases.get(name, 0.0), cand_phases.get(name, 0.0)
        deltas.append(
            PerfDelta("phase", name, b, c, _classify_time(b, c, rel_tol, abs_tol_s))
        )

    base_nodes = {";".join(n["stack"]): float(n["self_s"]) for n in base.nodes}
    cand_nodes = {";".join(n["stack"]): float(n["self_s"]) for n in cand.nodes}
    for name in sorted(base_nodes | cand_nodes):
        b, c = base_nodes.get(name, 0.0), cand_nodes.get(name, 0.0)
        deltas.append(
            PerfDelta("node", name, b, c, _classify_time(b, c, rel_tol, abs_tol_s))
        )

    for name in sorted(base.counters | cand.counters):
        b = float(base.counters.get(name, 0.0))
        c = float(cand.counters.get(name, 0.0))
        label = _classify_counter(b, c, counter_rel_tol, counter_abs_tol)
        if gate_counters and label == "changed" and c > b:
            label = "regressed"
        deltas.append(PerfDelta("counter", name, b, c, label))

    return PerfDiffReport(
        deltas=deltas,
        meta_base=dict(base.meta),
        meta_cand=dict(cand.meta),
        gate_counters=gate_counters,
    )


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f} ms"


def render_perfdiff_text(report: PerfDiffReport, *, verbose: bool = False) -> str:
    """Human report: regressions first, with their phase/function names."""
    lines: list[str] = []
    ident = " vs ".join(
        str(m.get("policy", "?")) + "/" + str(m.get("scenario", "?"))
        for m in (report.meta_base, report.meta_cand)
    )
    lines.append(f"perfdiff: {ident}")
    regressions = report.regressions()
    if regressions:
        lines.append(f"REGRESSED: {len(regressions)} quantit(y/ies) beyond tolerance")
        for d in regressions:
            if d.kind == "counter":
                lines.append(
                    f"  [counter] {d.name}: {d.base:.0f} -> {d.cand:.0f} "
                    f"({d.delta:+.0f})"
                )
            else:
                pct = f" ({d.ratio - 1.0:+.0%})" if d.base > 0 else " (new)"
                lines.append(
                    f"  [{d.kind}] {d.name}: {_fmt_s(d.base)} -> "
                    f"{_fmt_s(d.cand)}{pct}"
                )
    else:
        lines.append("ok: no timing regression beyond tolerance")
    improved = [d for d in report.deltas if d.classification == "improved"]
    if improved:
        lines.append(f"improved: {len(improved)}")
        for d in sorted(improved, key=lambda d: d.delta)[: 5 if not verbose else None]:
            lines.append(
                f"  [{d.kind}] {d.name}: {_fmt_s(d.base)} -> {_fmt_s(d.cand)}"
            )
    changed = [
        d
        for d in report.deltas
        if d.kind == "counter" and d.classification in ("changed", "regressed")
    ]
    if changed:
        lines.append(f"work counters changed: {len(changed)} (neutral unless gated)")
        for d in changed:
            lines.append(f"  [counter] {d.name}: {d.base:.0f} -> {d.cand:.0f}")
    if verbose:
        unchanged = [d for d in report.deltas if d.classification == "unchanged"]
        lines.append(f"unchanged: {len(unchanged)}")
    return "\n".join(lines)


def render_perfdiff_json(report: PerfDiffReport) -> str:
    return json.dumps(report.to_dict(), indent=1)
