"""One-call profiling sessions: run a scenario, get a PerfProfile.

:func:`profile_scenario` is what ``repro profile``,
``scripts/run_benchmarks.py`` and the tests share: it wires a
:class:`~repro.obs.perf.profiler.HotPathProfiler`, a
:class:`~repro.obs.perf.counters.WorkCounters` and (optionally)
``tracemalloc`` + a :class:`~repro.obs.perf.profiler.TraceProfiler`
through one :func:`~repro.experiments.runner.run_experiment` call and
packages everything into a versioned
:class:`~repro.obs.perf.artifact.PerfProfile`.

Modes
-----
``kernels`` (default)
    Deterministic instrumented spans only — the call-tree *shape* is a
    pure function of the seed; overhead is a few percent.
``trace``
    Additionally runs the ``sys.setprofile`` tracer and stores
    per-function stacks instead of the hand-placed spans (2-5x slower;
    use to find hot spots the spans don't cover).
"""

from __future__ import annotations

import tracemalloc

from ...experiments.runner import run_experiment
from ...experiments.scenarios import Scenario
from .artifact import PerfProfile
from .counters import WorkCounters
from .profiler import HotPathProfiler, TraceProfiler

__all__ = ["PROFILE_MODES", "build_profile", "profile_scenario"]

PROFILE_MODES = ("kernels", "trace")


def build_profile(
    *,
    profiler: HotPathProfiler | None = None,
    tracer: TraceProfiler | None = None,
    work: WorkCounters | None = None,
    meta: dict[str, object] | None = None,
    top_alloc: int = 15,
) -> PerfProfile:
    """Package live instruments into a :class:`PerfProfile`.

    The tracer's function stacks take precedence over the profiler's
    kernel spans when both are present (trace mode); phase summaries
    and allocation accounting always come from the profiler.
    """
    phases: dict[str, dict[str, float]] = {}
    allocations: dict[str, object] = {}
    if profiler is not None:
        phases = {
            name: stats.to_dict()  # type: ignore[misc]
            for name, stats in profiler.phase_timings().items()
        }
        phase_bytes = profiler.phase_allocations()
        if phase_bytes or tracemalloc.is_tracing():
            allocations = {
                "phase_bytes": phase_bytes,
                "top_sites": profiler.allocation_sites(top_alloc),
            }
    nodes = (
        tracer.span_nodes()
        if tracer is not None
        else (profiler.span_nodes() if profiler is not None else [])
    )
    return PerfProfile(
        meta=dict(meta or {}),
        phases=phases,
        nodes=nodes,
        counters=work.totals() if work is not None else {},
        allocations=allocations,
    )


def profile_scenario(
    policy: str,
    scenario: Scenario,
    *,
    mode: str = "kernels",
    allocations: bool = True,
    top_alloc: int = 15,
    engine: str = "scalar",
) -> PerfProfile:
    """Run ``policy`` over ``scenario`` under full perf instrumentation."""
    if mode not in PROFILE_MODES:
        raise ValueError(f"unknown profile mode {mode!r}; choose from {PROFILE_MODES}")
    profiler = HotPathProfiler()
    work = WorkCounters()
    tracer = TraceProfiler() if mode == "trace" else None
    started_tracemalloc = False
    if allocations and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracemalloc = True
    try:
        if tracer is not None:
            tracer.start()
        try:
            run_experiment(
                policy, scenario, profiler=profiler, work=work, engine=engine
            )
        finally:
            if tracer is not None:
                tracer.stop()
        meta: dict[str, object] = {
            "policy": policy,
            "scenario": scenario.name,
            "seed": scenario.config.seed,
            "epochs": scenario.epochs,
            "mode": mode,
            "engine": engine,
        }
        return build_profile(
            profiler=profiler,
            tracer=tracer,
            work=work,
            meta=meta,
            top_alloc=top_alloc,
        )
    finally:
        if started_tracemalloc:
            tracemalloc.stop()
