"""Hot-path profilers: kernel spans and a ``sys.setprofile`` tracer.

Two complementary instruments, both measurement-only (no value they
produce ever feeds back into simulation state, which is why this module
shares ``obs/profiler.py``'s wall-clock exemption):

* :class:`HotPathProfiler` — the *deterministic instrumented* mode.  It
  extends :class:`~repro.obs.profiler.PhaseProfiler` with nested
  :meth:`~HotPathProfiler.span` context managers at hand-placed kernel
  sites (decision evaluation, EWMA smoothing, threshold checks,
  overflow recursion, storage accounting, routing).  The resulting call
  tree's *shape* — which stacks exist and how often each ran — is a
  pure function of the seed, so two same-seed runs disagree only in the
  measured seconds, never in the tree.
* :class:`TraceProfiler` — the optional ``sys.setprofile`` mode.  It
  attributes self-time to every Python function call, which finds hot
  spots the hand-placed spans don't cover (at ~2-5x run-time overhead;
  use it to *find* a kernel, then instrument it).

Both produce the same node records (``stack``/``count``/``total_s``/
``self_s``), so the exporters in :mod:`repro.obs.perf.artifact` and the
flamegraph renderer consume either.

:class:`HotPathProfiler` can also meter allocations: with
``tracemalloc`` tracing active it records the net allocated bytes per
engine phase, and :meth:`allocation_sites` snapshots the top allocation
sites for the profile artifact.
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from typing import Any

from ..profiler import PhaseProfiler

__all__ = ["HotPathProfiler", "TraceProfiler", "span_node_records"]


def span_node_records(
    nodes: dict[tuple[str, ...], list[float]], *, self_stored: bool = False
) -> list[dict[str, object]]:
    """Normalise a raw node table into sorted, export-ready records.

    ``nodes`` maps stack paths to ``[count, seconds]`` where the seconds
    are inclusive totals (instrumented spans) or exclusive self-times
    (``self_stored=True``, the tracer's accounting); the records carry
    both views so every exporter sees ``total_s`` and ``self_s``.
    """
    if self_stored:
        totals: dict[tuple[str, ...], float] = {}
        for path, (_count, self_s) in nodes.items():
            for depth in range(1, len(path) + 1):
                prefix = path[:depth]
                totals[prefix] = totals.get(prefix, 0.0) + self_s
        return [
            {
                "stack": list(path),
                "count": int(nodes[path][0]),
                "total_s": totals[path],
                "self_s": nodes[path][1],
            }
            for path in sorted(nodes)
        ]
    children_total: dict[tuple[str, ...], float] = {}
    for path, (_count, total) in nodes.items():
        if len(path) > 1:
            parent = path[:-1]
            children_total[parent] = children_total.get(parent, 0.0) + total
    return [
        {
            "stack": list(path),
            "count": int(nodes[path][0]),
            "total_s": nodes[path][1],
            "self_s": max(0.0, nodes[path][1] - children_total.get(path, 0.0)),
        }
        for path in sorted(nodes)
    ]


class _SpanTimer:
    """Reusable context manager timing one kernel span entry."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "HotPathProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_SpanTimer":
        self._profiler._stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        profiler = self._profiler
        node = profiler._nodes.setdefault(tuple(profiler._stack), [0, 0.0])
        node[0] += 1
        node[1] += elapsed
        profiler._stack.pop()


class _HotPhaseTimer:
    """Phase timer that also roots the span stack and meters allocation."""

    __slots__ = ("_profiler", "_phase", "_t0", "_alloc0")

    def __init__(self, profiler: "HotPathProfiler", phase: str) -> None:
        self._profiler = profiler
        self._phase = phase

    def __enter__(self) -> "_HotPhaseTimer":
        profiler = self._profiler
        profiler._stack.append(self._phase)
        self._alloc0 = (
            tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else None
        )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        profiler = self._profiler
        profiler._samples[self._phase].append(elapsed)
        node = profiler._nodes.setdefault(tuple(profiler._stack), [0, 0.0])
        node[0] += 1
        node[1] += elapsed
        if self._alloc0 is not None:
            grown = tracemalloc.get_traced_memory()[0] - self._alloc0
            if grown > 0:
                profiler._phase_alloc[self._phase] = (
                    profiler._phase_alloc.get(self._phase, 0) + grown
                )
        profiler._stack.pop()


class HotPathProfiler(PhaseProfiler):
    """Phase profiler with nested kernel spans and allocation metering.

    Engine phases (via :meth:`phase`) root the stack; hand-placed
    :meth:`span` sites nest under them, accumulating ``(count, total)``
    per distinct stack path.  Everything a :class:`PhaseProfiler` does
    still works — the per-phase table, ``latest()`` for the time-series
    recorder, ``merge()`` — so it drops into ``Simulation(profiler=...)``
    unchanged.
    """

    #: The engine hands this profiler to span-capable components
    #: (policy, decision tree, service walk) when True.
    supports_spans: bool = True

    def __init__(self) -> None:
        super().__init__()
        self._timers = {name: _HotPhaseTimer(self, name) for name in self._timers}
        self._stack: list[str] = []
        #: ``{stack path: [count, total_seconds]}`` over all entries.
        self._nodes: dict[tuple[str, ...], list[float]] = {}
        self._span_timers: dict[str, _SpanTimer] = {}
        #: Net bytes allocated per phase (only while tracemalloc traces).
        self._phase_alloc: dict[str, int] = {}

    def phase(self, name: str) -> _HotPhaseTimer:
        timer = self._timers.get(name)
        if timer is None:
            self._samples[name] = self._samples.get(name, [])
            timer = self._timers[name] = _HotPhaseTimer(self, name)
        return timer

    def span(self, name: str) -> _SpanTimer:
        """Context manager timing one nested kernel entry of ``name``."""
        timer = self._span_timers.get(name)
        if timer is None:
            timer = self._span_timers[name] = _SpanTimer(self, name)
        return timer

    # ------------------------------------------------------------------
    def span_nodes(self) -> list[dict[str, object]]:
        """Export-ready span records, sorted by stack path."""
        return span_node_records(self._nodes)

    def phase_allocations(self) -> dict[str, int]:
        """Net bytes allocated per phase (empty unless tracemalloc ran)."""
        return dict(self._phase_alloc)

    @staticmethod
    def allocation_sites(top_n: int = 15) -> list[dict[str, object]]:
        """Top-N live allocation sites from the current tracemalloc state.

        Returns ``[]`` when tracing is off, so callers need no guard.
        """
        if not tracemalloc.is_tracing():
            return []
        snapshot = tracemalloc.take_snapshot().filter_traces(
            (
                tracemalloc.Filter(False, tracemalloc.__file__),
                tracemalloc.Filter(False, "<frozen importlib._bootstrap>"),
            )
        )
        sites = []
        for stat in snapshot.statistics("lineno")[:top_n]:
            frame = stat.traceback[0]
            sites.append(
                {
                    "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                    "size_bytes": int(stat.size),
                    "count": int(stat.count),
                }
            )
        return sites

    def reset(self) -> None:
        super().reset()
        self._stack.clear()
        self._nodes.clear()
        self._phase_alloc.clear()

    def merge(self, other: PhaseProfiler) -> None:
        super().merge(other)
        other_nodes = getattr(other, "_nodes", None)
        if other_nodes:
            for path, (count, total) in other_nodes.items():
                node = self._nodes.setdefault(path, [0, 0.0])
                node[0] += count
                node[1] += total
        other_alloc = getattr(other, "_phase_alloc", None)
        if other_alloc:
            for phase, grown in other_alloc.items():
                self._phase_alloc[phase] = self._phase_alloc.get(phase, 0) + grown


class TraceProfiler:
    """Function-level self-time attribution via ``sys.setprofile``.

    Python call/return events maintain a live stack of
    ``file.py:qualname`` labels; the elapsed time between consecutive
    events is charged to the function on top (exclusive self-time).
    C calls are deliberately not descended into — a ``time.sleep`` or a
    numpy kernel is charged to the Python function that invoked it,
    which is the frame a fix would edit.

    Use as a context manager around the code under test::

        tracer = TraceProfiler()
        with tracer:
            sim.run(50)
        nodes = tracer.span_nodes()
    """

    def __init__(self, max_depth: int = 64) -> None:
        self.max_depth = max_depth
        self._stack: list[str] = []
        #: ``{stack path: [count, self_seconds]}``.
        self._nodes: dict[tuple[str, ...], list[float]] = {}
        self._last = 0.0
        self._skipped = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceProfiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self) -> None:
        self._last = time.perf_counter()
        sys.setprofile(self._event)

    def stop(self) -> None:
        sys.setprofile(None)
        self._charge(time.perf_counter())
        self._stack.clear()

    # ------------------------------------------------------------------
    def _charge(self, now: float) -> None:
        """Attribute the time since the last event to the current top."""
        if self._stack:
            node = self._nodes.setdefault(tuple(self._stack), [0, 0.0])
            node[1] += now - self._last
        self._last = now

    def _event(self, frame: Any, event: str, arg: object) -> None:
        now = time.perf_counter()
        # Charge on EVERY event — including c_call/c_return — so the
        # interval spent inside a C function (time.sleep, a numpy
        # kernel) lands on the Python frame that invoked it.
        self._charge(now)
        if event == "call":
            if len(self._stack) >= self.max_depth:
                self._skipped += 1
                self._last = time.perf_counter()
                return
            code = frame.f_code
            label = f"{os.path.basename(code.co_filename)}:{code.co_qualname}"
            self._stack.append(label)
            node = self._nodes.setdefault(tuple(self._stack), [0, 0.0])
            node[0] += 1
        elif event == "return":
            if self._skipped:
                self._skipped -= 1
            elif self._stack:
                self._stack.pop()
        self._last = time.perf_counter()  # exclude handler overhead

    # ------------------------------------------------------------------
    def span_nodes(self) -> list[dict[str, object]]:
        """Export-ready node records, sorted by stack path."""
        return span_node_records(self._nodes, self_stored=True)

    def reset(self) -> None:
        self._stack.clear()
        self._nodes.clear()
        self._skipped = 0
