"""Self-contained flamegraph HTML for a :class:`PerfProfile`.

Same contract as ``repro dashboard``: one file, zero external
references (CI greps the output for URLs and fails on any), inline CSS
and JS only, so the artifact opens from a mail attachment or an
air-gapped CI artifact store.  The call tree is embedded as JSON and
rendered client-side into absolutely-positioned frame divs — width
proportional to inclusive time, click to zoom into a subtree, click
the root bar to zoom back out.
"""

from __future__ import annotations

import html
import json

from .artifact import PerfProfile

__all__ = ["render_flamegraph"]

_CSS = """
:root { color-scheme: light dark; }
body { margin: 0; font: 13px/1.45 -apple-system, "Segoe UI", Roboto,
       sans-serif; background: #16181d; color: #d8dce3; }
main { max-width: 1200px; margin: 0 auto; padding: 18px 22px 40px; }
h1 { font-size: 17px; margin: 0 0 2px; }
p.sub { margin: 0 0 14px; color: #8b93a1; font-size: 12px; }
#flame { position: relative; width: 100%; }
.frame { position: absolute; height: 19px; box-sizing: border-box;
         border: 1px solid #16181d; border-radius: 2px; overflow: hidden;
         white-space: nowrap; font-size: 11px; line-height: 17px;
         padding: 0 4px; color: #14161a; cursor: pointer; }
.frame:hover { filter: brightness(1.18); }
#detail { margin-top: 14px; padding: 8px 10px; background: #1d2026;
          border-radius: 6px; min-height: 2.6em; font-size: 12px;
          color: #aeb6c2; }
table.hot { border-collapse: collapse; margin-top: 16px; width: 100%; }
table.hot th, table.hot td { text-align: left; padding: 3px 10px 3px 0;
          border-bottom: 1px solid #262a31; font-size: 12px; }
table.hot td.num, table.hot th.num { text-align: right; }
footer { margin-top: 22px; color: #6b7380; font-size: 11px; }
"""

_JS = """
'use strict';
const DATA = JSON.parse(document.getElementById('profile-data').textContent);
const el = document.getElementById('flame');
const detail = document.getElementById('detail');

function buildTree(nodes) {
  const root = {name: 'all', total: 0, self: 0, count: 0, children: new Map()};
  for (const n of nodes) {
    let cur = root;
    for (const label of n.stack) {
      if (!cur.children.has(label)) {
        cur.children.set(label, {name: label, total: 0, self: 0, count: 0,
                                 children: new Map()});
      }
      cur = cur.children.get(label);
    }
    cur.total = n.total_s; cur.self = n.self_s; cur.count = n.count;
  }
  root.total = 0;
  for (const child of root.children.values()) root.total += child.total;
  return root;
}

function fmt(s) {
  if (s >= 1) return s.toFixed(2) + ' s';
  if (s >= 1e-3) return (s * 1e3).toFixed(2) + ' ms';
  return (s * 1e6).toFixed(0) + ' us';
}

function color(name) {
  let h = 2166136261;
  for (let i = 0; i < name.length; i++) {
    h ^= name.charCodeAt(i); h = Math.imul(h, 16777619);
  }
  const hue = 18 + (Math.abs(h) % 42);        /* warm flame palette */
  const light = 58 + (Math.abs(h >> 8) % 16);
  return 'hsl(' + hue + ',82%,' + light + '%)';
}

const ROW = 20;
let zoomRoot = null;

function render(root) {
  zoomRoot = root;
  el.textContent = '';
  const frames = [];
  let maxDepth = 0;
  (function place(node, depth, x0, span) {
    if (depth > 0) {
      frames.push({node, depth, x0, span});
      maxDepth = Math.max(maxDepth, depth);
    }
    let x = x0;
    const kids = [...node.children.values()];
    const denom = node === root && depth === 0
      ? kids.reduce((a, c) => a + c.total, 0) || 1
      : node.total || 1;
    for (const child of kids) {
      const w = span * (child.total / denom);
      place(child, depth + 1, x, w);
      x += w;
    }
  })(root, 0, 0, 100);
  el.style.height = ((maxDepth + 1) * ROW + 4) + 'px';
  const rootBar = document.createElement('div');
  rootBar.className = 'frame';
  rootBar.style.cssText = 'left:0;width:100%;top:0;background:#3a4150;color:#d8dce3';
  rootBar.textContent = root.name === 'all'
    ? 'all (' + fmt(root.total) + ') — click a frame to zoom'
    : root.name + ' (' + fmt(root.total) + ') — click to reset zoom';
  rootBar.onclick = () => render(buildTree(DATA.nodes));
  el.appendChild(rootBar);
  for (const f of frames) {
    if (f.span <= 0.05) continue;          /* sub-half-per-mille: skip */
    const d = document.createElement('div');
    d.className = 'frame';
    d.style.left = f.x0 + '%';
    d.style.width = f.span + '%';
    d.style.top = (f.depth * ROW) + 'px';
    d.style.background = color(f.node.name);
    d.textContent = f.node.name;
    const pct = ((f.node.total / (zoomRoot.total || 1)) * 100).toFixed(1);
    d.title = f.node.name + ' — total ' + fmt(f.node.total) + ' (' + pct +
              '%), self ' + fmt(f.node.self) + ', ' + f.node.count + ' calls';
    d.onclick = () => { render(f.node); };
    d.onmouseenter = () => { detail.textContent = d.title; };
    el.appendChild(d);
  }
}

render(buildTree(DATA.nodes));
"""


def _hot_table(profile: PerfProfile, top_n: int = 12) -> str:
    rows = []
    total = profile.total_seconds() or 1.0
    for node in profile.hottest(top_n):
        stack = ";".join(node["stack"])
        self_s = float(node["self_s"])
        rows.append(
            "<tr>"
            f"<td>{html.escape(stack)}</td>"
            f"<td class='num'>{int(node['count'])}</td>"
            f"<td class='num'>{self_s * 1e3:.3f}</td>"
            f"<td class='num'>{self_s / total:.1%}</td>"
            "</tr>"
        )
    if not rows:
        return ""
    return (
        '<table class="hot"><thead><tr><th>stack</th><th class="num">calls</th>'
        '<th class="num">self ms</th><th class="num">share</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_flamegraph(profile: PerfProfile, *, title: str | None = None) -> str:
    """Render one self-contained flamegraph HTML page."""
    meta = profile.meta
    if title is None:
        bits = [str(meta.get("policy", "run"))]
        if meta.get("scenario"):
            bits.append(str(meta["scenario"]))
        title = "RFH hot-path flamegraph — " + " / ".join(bits)
    sub_bits = [
        f"{key}={meta[key]}"
        for key in ("policy", "scenario", "seed", "epochs", "mode")
        if meta.get(key) is not None
    ]
    sub_bits.append(f"{len(profile.nodes)} stacks")
    sub_bits.append(f"{profile.total_seconds() * 1e3:.1f} ms profiled")
    # "<\\/" keeps an embedded "</script>" from terminating the data
    # block; no other escaping is needed inside a JSON script element.
    data = json.dumps({"nodes": profile.nodes}, separators=(",", ":")).replace(
        "</", "<\\/"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(" · ".join(sub_bits))}</p>\n'
        '<div id="flame"></div>\n'
        '<div id="detail">hover a frame for details; click to zoom</div>\n'
        f"{_hot_table(profile)}\n"
        "<footer>rendered by repro profile · offline: no external "
        "resources</footer>\n</main>\n"
        f'<script id="profile-data" type="application/json">{data}</script>\n'
        f"<script>{_JS}</script>\n"
        "</body>\n</html>\n"
    )
