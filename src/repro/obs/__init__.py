"""Structured observability for the simulation engine.

Four orthogonal instruments, all optional and all off by default so the
reproduction's hot path is untouched unless a user asks to look inside:

* :mod:`repro.obs.trace` — typed, timestamped event records emitted at
  every membership change, lost-partition restore, policy action
  (capturing each action's ``reason``), gated/skipped action and SLA
  violation.  Ring-buffer mode bounds memory on long runs; the JSONL
  sink streams to disk for archival analysis (``jq``-able).
* :mod:`repro.obs.profiler` — per-epoch wall-clock timing of the six
  engine phases (membership → workload → serve → observe → apply →
  record), summarised as mean/p50/p95/total per phase.
* :mod:`repro.obs.registry` — labelled counters, gauges and histograms
  (e.g. ``actions_total{kind=migrate, policy=rfh}``) with JSON snapshot
  export and a ``reset()`` for test isolation.
* :mod:`repro.obs.timeseries` — per-epoch columnar recording of every
  metric/instrument/phase signal into a versioned ``.tsdb.json``
  artifact, plus cross-run regression diffing (``repro diff``) and a
  self-contained offline HTML dashboard (``repro dashboard``).

Wire them through :class:`repro.sim.engine.Simulation`::

    sim = Simulation(config, tracer=RingBufferTracer(10_000),
                     profiler=PhaseProfiler(),
                     instruments=InstrumentRegistry(),
                     timeseries=TimeseriesRecorder())

or from the command line::

    python -m repro run --policy rfh --trace-out trace.jsonl --profile \\
        --timeseries-out run.tsdb.json
"""

from .profiler import ENGINE_PHASES, NullProfiler, PhaseProfiler, PhaseStats
from .registry import Counter, Gauge, Histogram, InstrumentRegistry
from .timeseries import TimeseriesRecorder, TsdbArtifact
from .trace import (
    JsonlTracer,
    NullTracer,
    RingBufferTracer,
    TraceEvent,
    Tracer,
    TraceReadWarning,
    read_jsonl,
)

__all__ = [
    "ENGINE_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "JsonlTracer",
    "NullProfiler",
    "NullTracer",
    "PhaseProfiler",
    "PhaseStats",
    "RingBufferTracer",
    "TimeseriesRecorder",
    "TraceEvent",
    "TraceReadWarning",
    "Tracer",
    "TsdbArtifact",
    "read_jsonl",
]
