"""Event tracing: per-decision records the epoch aggregates throw away.

The engine's metric series answer "how many migrations happened at
epoch 120?"; a trace answers "*which* replica moved, from where to
where, and which rule fired".  Replication studies need the latter —
per-event replica creation/loss histories, not per-epoch sums — so the
engine emits one :class:`TraceEvent` per membership change, restore,
applied or skipped action, and SLA violation.

Two real sinks plus a null object:

* :class:`RingBufferTracer` keeps the last ``capacity`` events in memory
  (a :class:`collections.deque`), counting what it dropped — safe on
  arbitrarily long runs;
* :class:`JsonlTracer` streams every event to a JSON-Lines file, one
  object per line, for archival / ``jq`` analysis;
* :class:`NullTracer` is the engine default: ``enabled`` is ``False``
  and the hot path pays exactly one attribute check per emission site.
"""

from __future__ import annotations

import json
import pathlib
import time
import warnings
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = [
    "TRACE_KINDS",
    "TraceEvent",
    "TraceReadWarning",
    "Tracer",
    "NullTracer",
    "RingBufferTracer",
    "JsonlTracer",
    "read_jsonl",
]


class TraceReadWarning(UserWarning):
    """A trace file contained lines that could not be decoded."""

#: Every ``kind`` the engine emits, for consumers that switch on it.
TRACE_KINDS: tuple[str, ...] = (
    "replica_bootstrap",
    "server_failure",
    "server_recovery",
    "server_join",
    "partition_restore",
    "replicate",
    "migrate",
    "suicide",
    "action_skipped",
    "sla_violation",
    "link_failure",
    "link_recovery",
    "invariant_violation",
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One engine event, self-describing and JSON-serialisable.

    ``server`` is the acted-on server (replication/migration target,
    suicide victim, failed/joined server); the counterpart, if any,
    rides in ``extra`` (e.g. ``{"source": 12}``).  ``reason`` carries
    the policy's :attr:`~repro.sim.actions.Replicate.reason` verbatim
    for action kinds, or the engine's own cause tag otherwise.
    """

    epoch: int
    kind: str
    server: int | None = None
    partition: int | None = None
    reason: str = ""
    cost: float = 0.0
    policy: str = ""
    # Wall-clock on purpose: ``ts`` is observability metadata (when the
    # record was emitted), never simulation state — replays ignore it.
    ts: float = field(default_factory=time.time)  # repro: noqa[REP002]
    extra: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Flat dict for JSONL: ``extra`` keys are inlined."""
        out: dict[str, object] = {
            "epoch": self.epoch,
            "kind": self.kind,
            "server": self.server,
            "partition": self.partition,
            "reason": self.reason,
            "cost": self.cost,
            "policy": self.policy,
            "ts": self.ts,
        }
        for key, value in self.extra.items():
            if key not in out:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> TraceEvent:
        """Inverse of :meth:`to_dict` (extra keys recovered)."""
        known = {"epoch", "kind", "server", "partition", "reason", "cost", "policy", "ts"}
        extra = {k: v for k, v in payload.items() if k not in known}
        server = payload.get("server")
        partition = payload.get("partition")
        return cls(
            epoch=int(payload["epoch"]),  # type: ignore[arg-type]
            kind=str(payload["kind"]),
            server=None if server is None else int(server),  # type: ignore[arg-type]
            partition=None if partition is None else int(partition),  # type: ignore[arg-type]
            reason=str(payload.get("reason", "")),
            cost=float(payload.get("cost", 0.0)),  # type: ignore[arg-type]
            policy=str(payload.get("policy", "")),
            ts=float(payload.get("ts", 0.0)),  # type: ignore[arg-type]
            extra=extra,
        )


class Tracer:
    """Base sink: subclasses override :meth:`emit`.

    ``enabled`` is what the engine checks before building an event, so a
    disabled tracer costs one attribute load per site — the event object
    is never constructed.
    """

    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; safe to call twice."""

    def __enter__(self) -> Tracer:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullTracer(Tracer):
    """The default: tracing off, one attribute check on the hot path."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        pass


class RingBufferTracer(Tracer):
    """Keep the most recent ``capacity`` events in memory.

    Long runs cannot grow without bound: once full, each new event
    evicts the oldest and bumps :attr:`dropped`.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted because the buffer was full.
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Buffered events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.kind == kind]

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0


class JsonlTracer(Tracer):
    """Stream every event to ``path`` as JSON Lines (one object/line).

    The file is opened eagerly (so a bad path fails fast) and each event
    is written immediately; call :meth:`close` (or use the tracer as a
    context manager) to flush.  Lines are analysable with ``jq``::

        jq -r 'select(.kind == "migrate") | .reason' trace.jsonl
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def read_jsonl(path: str | pathlib.Path, *, strict: bool = False) -> Iterator[TraceEvent]:
    """Yield the :class:`TraceEvent` records of a :class:`JsonlTracer` file.

    An interrupted run leaves a truncated final line (and a crashed
    writer can leave garbage anywhere); by default such lines are
    skipped with a :class:`TraceReadWarning` so post-hoc analysis of a
    partial trace still completes.  Pass ``strict=True`` to re-raise the
    underlying :class:`json.JSONDecodeError` instead.
    """
    with open(pathlib.Path(path), encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise
                warnings.warn(
                    f"{path}:{lineno}: skipping malformed trace line "
                    f"({exc.msg}); the writer was probably interrupted",
                    TraceReadWarning,
                    stacklevel=2,
                )
                continue
            yield TraceEvent.from_dict(payload)
