"""Labelled instruments: counters, gauges and histograms.

A :class:`InstrumentRegistry` is the aggregate companion to the event
trace — cheap running totals you can snapshot at any point without
replaying events.  The naming convention follows the de-facto metrics
standard: a family name plus a label set, e.g.::

    registry.counter("actions_total", kind="migrate", policy="rfh").inc()
    registry.histogram("replica_lifetime_epochs").observe(132.0)

Instruments are get-or-create: asking for the same (name, labels) twice
returns the same object, and differing label values create distinct
children under one family.  ``snapshot()`` renders everything to plain
JSON-able dicts; ``reset()`` zeroes state for test isolation.

Histograms keep every sample by default (exact quantiles; the engine
only feeds low-rate signals such as replica deaths).  For high-rate
instruments, construct the registry with ``histogram_reservoir=N``:
each histogram then holds a fixed-size uniform random sample
(Vitter's algorithm R, deterministically seeded per instrument), so
memory stays bounded on arbitrarily long runs while count/sum/min/max
remain exact and quantiles become estimates — flagged by
``sampled: true`` in the summary.
"""

from __future__ import annotations

import json
import pathlib
import random
import zlib
from collections.abc import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "InstrumentRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. live replica count)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution summary (count/sum/min/max + samples).

    Exact mode (default, ``reservoir=None``) keeps every sample so
    snapshots report true quantiles.  Reservoir mode keeps a fixed-size
    uniform sample via Vitter's algorithm R with a deterministic
    per-instrument seed: count, sum, min, max and mean stay exact
    (tracked outside the sample), quantiles become estimates and the
    summary reports ``sampled: true`` once the reservoir has displaced
    anything.
    """

    __slots__ = ("labels", "samples", "_reservoir", "_rng", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        labels: dict[str, str],
        *,
        reservoir: int | None = None,
        seed: int = 0,
    ) -> None:
        if reservoir is not None and reservoir < 1:
            raise ValueError(f"reservoir size must be >= 1, got {reservoir}")
        self.labels = labels
        self.samples: list[float] = []
        self._reservoir = reservoir
        self._rng = random.Random(seed) if reservoir is not None else None
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value
        if self._reservoir is None or len(self.samples) < self._reservoir:
            self.samples.append(value)
        else:
            # Algorithm R: the new sample replaces a uniformly-random
            # slot with probability reservoir/count.
            slot = self._rng.randrange(self._count)
            if slot < self._reservoir:
                self.samples[slot] = value

    @property
    def sampled(self) -> bool:
        """True once the reservoir has displaced at least one sample."""
        return self._reservoir is not None and self._count > self._reservoir

    def summary(self) -> dict[str, float | bool]:
        if self._count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "sampled": False,
            }
        ordered = sorted(self.samples)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[min(n - 1, max(0, round(q * (n - 1))))]

        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "sampled": self.sampled,
        }


class InstrumentRegistry:
    """Families of labelled counters/gauges/histograms.

    ``histogram_reservoir`` switches every histogram to bounded-memory
    reservoir sampling (see :class:`Histogram`); ``seed`` makes the
    reservoirs deterministic — each instrument derives its own stream
    from the registry seed and its (name, labels) identity, so sampling
    is reproducible and independent of creation order.
    """

    def __init__(
        self, *, histogram_reservoir: int | None = None, seed: int = 0
    ) -> None:
        if histogram_reservoir is not None and histogram_reservoir < 1:
            raise ValueError(
                f"histogram_reservoir must be >= 1, got {histogram_reservoir}"
            )
        self._counters: dict[str, dict[LabelKey, Counter]] = {}
        self._gauges: dict[str, dict[LabelKey, Gauge]] = {}
        self._histograms: dict[str, dict[LabelKey, Histogram]] = {}
        self._histogram_reservoir = histogram_reservoir
        self._seed = seed

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        family = self._counters.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = Counter({k: v for k, v in key})
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = Gauge({k: v for k, v in key})
        return inst

    def histogram(self, name: str, **labels: str) -> Histogram:
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            identity = name + "|" + "|".join(f"{k}={v}" for k, v in key)
            inst = family[key] = Histogram(
                {k: v for k, v in key},
                reservoir=self._histogram_reservoir,
                seed=self._seed ^ zlib.crc32(identity.encode()),
            )
        return inst

    # -- export --------------------------------------------------------
    def iter_scalars(self) -> Iterator[tuple[str, str, dict[str, str], float]]:
        """Every counter and gauge as ``(kind, name, labels, value)``,
        in deterministic sorted order (the time-series recorder samples
        this once per epoch)."""
        for kind, families in (("counter", self._counters), ("gauge", self._gauges)):
            for name in sorted(families):
                for key in sorted(families[name]):
                    inst = families[name][key]
                    yield kind, name, inst.labels, inst.value

    def snapshot(self) -> dict[str, list[dict[str, object]]]:
        """Everything as plain dicts: ``{counters: [...], gauges: [...],
        histograms: [...]}``, each entry ``{name, labels, ...}``."""

        def rows(families, render):
            out = []
            for name in sorted(families):
                for key in sorted(families[name]):
                    inst = families[name][key]
                    out.append({"name": name, "labels": dict(inst.labels), **render(inst)})
            return out

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(self._histograms, lambda h: h.summary()),
        }

    def to_json(self, path: str | pathlib.Path) -> None:
        """Write :meth:`snapshot` to ``path`` (pretty-printed, newline-terminated)."""
        pathlib.Path(path).write_text(json.dumps(self.snapshot(), indent=1) + "\n")

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
