"""Labelled instruments: counters, gauges and histograms.

A :class:`InstrumentRegistry` is the aggregate companion to the event
trace — cheap running totals you can snapshot at any point without
replaying events.  The naming convention follows the de-facto metrics
standard: a family name plus a label set, e.g.::

    registry.counter("actions_total", kind="migrate", policy="rfh").inc()
    registry.histogram("replica_lifetime_epochs").observe(132.0)

Instruments are get-or-create: asking for the same (name, labels) twice
returns the same object, and differing label values create distinct
children under one family.  ``snapshot()`` renders everything to plain
JSON-able dicts; ``reset()`` zeroes state for test isolation.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["Counter", "Gauge", "Histogram", "InstrumentRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. live replica count)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution summary (count/sum/min/max + raw samples).

    Samples are kept so snapshots can report true quantiles; the engine
    only feeds low-rate signals here (one observation per replica
    death), so memory stays proportional to event counts, not epochs.
    """

    __slots__ = ("labels", "samples")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0}
        ordered = sorted(self.samples)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[min(n - 1, max(0, round(q * (n - 1))))]

        total = sum(ordered)
        return {
            "count": n,
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / n,
            "p50": pct(0.50),
            "p95": pct(0.95),
        }


class InstrumentRegistry:
    """Families of labelled counters/gauges/histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[LabelKey, Counter]] = {}
        self._gauges: dict[str, dict[LabelKey, Gauge]] = {}
        self._histograms: dict[str, dict[LabelKey, Histogram]] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        family = self._counters.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = Counter({k: v for k, v in key})
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = Gauge({k: v for k, v in key})
        return inst

    def histogram(self, name: str, **labels: str) -> Histogram:
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = Histogram({k: v for k, v in key})
        return inst

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict[str, list[dict[str, object]]]:
        """Everything as plain dicts: ``{counters: [...], gauges: [...],
        histograms: [...]}``, each entry ``{name, labels, ...}``."""

        def rows(families, render):
            out = []
            for name in sorted(families):
                for key in sorted(families[name]):
                    inst = families[name][key]
                    out.append({"name": name, "labels": dict(inst.labels), **render(inst)})
            return out

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(self._histograms, lambda h: h.summary()),
        }

    def to_json(self, path: str | pathlib.Path) -> None:
        """Write :meth:`snapshot` to ``path`` (pretty-printed, newline-terminated)."""
        pathlib.Path(path).write_text(json.dumps(self.snapshot(), indent=1) + "\n")

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
