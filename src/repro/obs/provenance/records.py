"""The decision-provenance record vocabulary.

One :class:`DecisionRecord` is produced per partition per epoch while a
:class:`~repro.obs.provenance.recorder.ProvenanceRecorder` is attached:
the Fig. 2 tree's threshold predicates (Eqs. 12/13/15/16 plus the
engine-specific gates) as :class:`PredicateEval` rows, the candidate
set (hub datacenters, suicide candidates, placement targets) as
:class:`CandidateEval` rows, the chosen action with its reason, and —
filled in later by the engine's apply phase — the action's fate
(applied or skipped, and by which gate).

``eq`` tags are a closed vocabulary (:data:`EQ_TAGS`); the explain
renderer maps them to the paper's notation (``tr_iit``, ``β·q̄``, ...).
``passed`` always means *the predicate's own comparison held*, exactly
as printed — e.g. ``eq14`` passed means the availability floor is met
(so the branch did **not** fire), while ``eq12`` passed means the
holder is overloaded (so the branch **did** fire).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EQ_TAGS",
    "CANDIDATE_ROLES",
    "BRANCHES",
    "ACTION_KINDS",
    "FATES",
    "PredicateEval",
    "CandidateEval",
    "DecisionRecord",
    "DecisionDraft",
]

#: Closed vocabulary of predicate tags (see module docstring for the
#: ``passed`` convention of each).
EQ_TAGS: tuple[str, ...] = (
    "eq14",  # replica_count >= rmin (availability floor met)
    "eq14-next",  # replica_count - 1 >= rmin (floor met without one copy)
    "blocked",  # unserved > blocked_tolerance(q̄)
    "eq12",  # tr_iit >= β·q̄ (smoothed holder traffic)
    "eq12-raw",  # raw-epoch holder traffic >= β·q̄
    "eq16",  # tr_ij - tr_ik >= μ·t̄r_i (migration benefit)
    "maturity",  # replica age >= suicide warm-up epochs
    "headroom-blocked",  # unserved <= headroom · blocked tolerance
    "headroom-load",  # tr_iit >= headroom · β·q̄ (suicide hysteresis)
)

#: Candidate roles: what a (dc, sid) was considered *for*.
CANDIDATE_ROLES: tuple[str, ...] = (
    "hub",  # Eq. 13 forwarding-hub candidacy (load branch)
    "availability-target",  # Eq. 14 placement ordering
    "local-relief",  # same-DC replica when no hub qualified
    "migration-source",  # the cold replica Eq. 16 would move
    "suicide",  # Eq. 15 suicide candidacy
)

#: Which branch of the Fig. 2 tree the record's evaluation reached.
BRANCHES: tuple[str, ...] = ("availability", "load", "suicide", "none", "")

ACTION_KINDS: tuple[str, ...] = ("replicate", "migrate", "suicide", "none")

FATES: tuple[str, ...] = ("applied", "skipped", "none")


@dataclass(frozen=True, slots=True)
class PredicateEval:
    """One threshold comparison with both sides materialized.

    ``lhs`` and ``threshold`` carry the actual numbers (``tr_ikt`` vs
    ``γ·q̄`` and friends), so slack — how far the predicate was from
    flipping — is always ``lhs - threshold``.
    """

    eq: str
    subject: str
    lhs: float
    threshold: float
    passed: bool


@dataclass(frozen=True, slots=True)
class CandidateEval:
    """One considered alternative and why it was (not) chosen.

    ``dc`` is always set; ``sid`` is ``-1`` unless the candidate is a
    specific server (suicide / migration source).  ``value`` and
    ``threshold`` carry the score the role was judged on (traffic vs
    ``γ·q̄`` for hubs, served vs ``δ·q̄`` for suicide) when one applies.
    """

    role: str
    dc: int
    sid: int = -1
    verdict: str = "rejected"  # "chosen" | "rejected"
    cause: str = ""
    value: float = float("nan")
    threshold: float = float("nan")


@dataclass(slots=True)
class DecisionRecord:
    """One partition's Fig. 2 evaluation for one epoch.

    Mutable only in its ``fate``/``fate_cause`` fields, which the engine
    sets during the apply phase (the decision happens in the observe
    phase, its fate two phases later).
    """

    epoch: int
    partition: int
    branch: str = "none"
    action: str = "none"
    reason: str = ""
    target_sid: int = -1
    target_dc: int = -1
    source_sid: int = -1
    fate: str = "none"
    fate_cause: str = ""
    # Context terms shared by every predicate of the decision.
    avg_query: float = float("nan")  # q̄_it (Eq. 10)
    holder_traffic: float = float("nan")  # tr_iit (Eq. 11, smoothed)
    unserved: float = float("nan")
    mean_traffic: float = float("nan")  # t̄r_i (Eq. 17)
    replica_count: int = -1
    rmin: int = -1
    holder_dc: int = -1
    predicates: tuple[PredicateEval, ...] = ()
    candidates: tuple[CandidateEval, ...] = ()

    @property
    def is_noop(self) -> bool:
        """True when nothing was decided and nothing was applied."""
        return self.action == "none" and self.fate == "none"


@dataclass(slots=True)
class DecisionDraft:
    """Mutable accumulator the decision tree writes into.

    Only exists while a recorder is attached; the recorder turns it
    into a :class:`DecisionRecord` at the end of ``decide_partition``.
    """

    epoch: int
    partition: int
    avg_query: float
    holder_traffic: float
    unserved: float
    mean_traffic: float
    replica_count: int
    rmin: int
    holder_dc: int
    branch: str = "none"
    predicates: list[PredicateEval] = field(default_factory=list)
    candidates: list[CandidateEval] = field(default_factory=list)

    def predicate(
        self, eq: str, subject: str, lhs: float, threshold: float, passed: bool
    ) -> None:
        self.predicates.append(
            PredicateEval(
                eq=eq,
                subject=subject,
                lhs=float(lhs),
                threshold=float(threshold),
                passed=bool(passed),
            )
        )

    def candidate(
        self,
        role: str,
        dc: int,
        *,
        sid: int = -1,
        verdict: str = "rejected",
        cause: str = "",
        value: float = float("nan"),
        threshold: float = float("nan"),
    ) -> None:
        self.candidates.append(
            CandidateEval(
                role=role,
                dc=int(dc),
                sid=int(sid),
                verdict=verdict,
                cause=cause,
                value=float(value),
                threshold=float(threshold),
            )
        )

    def resolve_candidate(self, role: str, dc: int, verdict: str, cause: str) -> None:
        """Rewrite the verdict of an already-noted candidate.

        Used when a candidate's fate is only known after later
        alternatives were examined (e.g. the hub that finally accepted a
        replica).  A (role, dc) that was never noted is appended instead
        so the ledger never silently drops an outcome.
        """
        for i, cand in enumerate(self.candidates):
            if cand.role == role and cand.dc == dc:
                self.candidates[i] = CandidateEval(
                    role=cand.role,
                    dc=cand.dc,
                    sid=cand.sid,
                    verdict=verdict,
                    cause=cause,
                    value=cand.value,
                    threshold=cand.threshold,
                )
                return
        self.candidate(role, dc, verdict=verdict, cause=cause)
