"""The versioned ``repro-prov`` v1 columnar ``.prov.json`` artifact.

One :class:`ProvArtifact` is the on-disk product of a provenance-
recorded run: every :class:`~repro.obs.provenance.records.DecisionRecord`
flattened into three columnar tables (decisions, predicates,
candidates) plus an interned string table, run metadata and the
recorder's compaction ledger.  Like ``.tsdb.json``, the format is plain
JSON (``jq``-able without this library), NaN-safe (non-finite floats
serialize as ``null``) and validated on load — every malformed input
raises :class:`~repro.errors.ProvenanceError`.

Layout::

    {"format": "repro-prov", "version": 1,
     "meta": {...}, "budget": N, "noop_dropped": {"<epoch>": count},
     "strings": ["", "availability", ...],
     "decisions":  {column -> parallel array, strings by table index},
     "predicates": {"decision" -> row index into decisions, ...},
     "candidates": {"decision" -> row index into decisions, ...}}
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

from ...errors import ProvenanceError
from .records import CandidateEval, DecisionRecord, PredicateEval

__all__ = ["PROV_FORMAT", "PROV_VERSION", "ProvArtifact"]

#: Magic format tag; a file without it is not a provenance artifact.
PROV_FORMAT = "repro-prov"
#: Schema version; bumped on any incompatible layout change.
PROV_VERSION = 1

_DECISION_STRINGS = ("branch", "action", "reason", "fate", "fate_cause")
_DECISION_INTS = (
    "epoch",
    "partition",
    "target_sid",
    "target_dc",
    "source_sid",
    "replica_count",
    "rmin",
    "holder_dc",
)
_DECISION_FLOATS = ("avg_query", "holder_traffic", "unserved", "mean_traffic")


def _clean(value: float) -> float | None:
    return float(value) if math.isfinite(value) else None


def _restore(value: object) -> float:
    return float("nan") if value is None else float(value)


class _Interner:
    """Deterministic string table: first occurrence wins the index."""

    def __init__(self) -> None:
        self.strings: list[str] = [""]
        self._index: dict[str, int] = {"": 0}

    def add(self, value: str) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(value)
            self._index[value] = idx
        return idx


@dataclass(frozen=True)
class ProvArtifact:
    """One recorded run's decision ledger + metadata."""

    records: tuple[DecisionRecord, ...]
    meta: dict[str, object] = field(default_factory=dict)
    #: Decision budget the recorder ran with.
    budget: int = 0
    #: ``{epoch: count}`` of no-op decisions compacted away.
    noop_dropped: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_decisions(self) -> int:
        return len(self.records)

    @property
    def num_actions(self) -> int:
        return sum(1 for rec in self.records if rec.action != "none")

    @property
    def noop_dropped_total(self) -> int:
        return sum(self.noop_dropped.values())

    def partitions(self) -> tuple[int, ...]:
        return tuple(sorted({rec.partition for rec in self.records}))

    def for_partition(
        self, partition: int, epoch: int | None = None
    ) -> tuple[DecisionRecord, ...]:
        """This partition's records in epoch order (optionally one epoch)."""
        out = [
            rec
            for rec in self.records
            if rec.partition == partition and (epoch is None or rec.epoch == epoch)
        ]
        out.sort(key=lambda rec: rec.epoch)
        return tuple(out)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        interner = _Interner()
        decisions: dict[str, list[object]] = {
            name: [] for name in _DECISION_INTS + _DECISION_STRINGS + _DECISION_FLOATS
        }
        predicates: dict[str, list[object]] = {
            "decision": [],
            "eq": [],
            "subject": [],
            "lhs": [],
            "threshold": [],
            "passed": [],
        }
        candidates: dict[str, list[object]] = {
            "decision": [],
            "role": [],
            "dc": [],
            "sid": [],
            "verdict": [],
            "cause": [],
            "value": [],
            "threshold": [],
        }
        for row, rec in enumerate(self.records):
            for name in _DECISION_INTS:
                decisions[name].append(int(getattr(rec, name)))
            for name in _DECISION_STRINGS:
                decisions[name].append(interner.add(str(getattr(rec, name))))
            for name in _DECISION_FLOATS:
                decisions[name].append(_clean(getattr(rec, name)))
            for pred in rec.predicates:
                predicates["decision"].append(row)
                predicates["eq"].append(interner.add(pred.eq))
                predicates["subject"].append(interner.add(pred.subject))
                predicates["lhs"].append(_clean(pred.lhs))
                predicates["threshold"].append(_clean(pred.threshold))
                predicates["passed"].append(1 if pred.passed else 0)
            for cand in rec.candidates:
                candidates["decision"].append(row)
                candidates["role"].append(interner.add(cand.role))
                candidates["dc"].append(int(cand.dc))
                candidates["sid"].append(int(cand.sid))
                candidates["verdict"].append(interner.add(cand.verdict))
                candidates["cause"].append(interner.add(cand.cause))
                candidates["value"].append(_clean(cand.value))
                candidates["threshold"].append(_clean(cand.threshold))
        return {
            "format": PROV_FORMAT,
            "version": PROV_VERSION,
            "meta": dict(self.meta),
            "budget": int(self.budget),
            "noop_dropped": {
                str(epoch): int(count)
                for epoch, count in sorted(self.noop_dropped.items())
            },
            "strings": interner.strings,
            "decisions": decisions,
            "predicates": predicates,
            "candidates": candidates,
        }

    @classmethod
    def from_dict(cls, raw: object) -> ProvArtifact:
        if not isinstance(raw, dict) or raw.get("format") != PROV_FORMAT:
            raise ProvenanceError(
                f"not a {PROV_FORMAT} artifact "
                f"(format={raw.get('format') if isinstance(raw, dict) else raw!r})"
            )
        version = raw.get("version")
        if version != PROV_VERSION:
            raise ProvenanceError(
                f"unsupported {PROV_FORMAT} version {version!r} "
                f"(this build reads version {PROV_VERSION})"
            )
        try:
            strings = [str(s) for s in raw["strings"]]

            def intern_of(table: str, column: object) -> list[str]:
                out = []
                for idx in column:  # type: ignore[attr-defined]
                    i = int(idx)
                    if not 0 <= i < len(strings):
                        raise ProvenanceError(
                            f"{table}: string index {i} outside table "
                            f"of {len(strings)}"
                        )
                    out.append(strings[i])
                return out

            decisions = raw["decisions"]
            n = len(decisions["epoch"])
            columns: dict[str, list[object]] = {}
            for name in _DECISION_INTS:
                columns[name] = [int(v) for v in decisions[name]]
            for name in _DECISION_STRINGS:
                columns[name] = list(intern_of(f"decisions.{name}", decisions[name]))
            for name in _DECISION_FLOATS:
                columns[name] = [_restore(v) for v in decisions[name]]
            for name, values in columns.items():
                if len(values) != n:
                    raise ProvenanceError(
                        f"decisions.{name} has {len(values)} rows, "
                        f"epoch column has {n}"
                    )

            def rows_of(
                table_name: str, table: dict[str, object], spec: dict[str, str]
            ) -> list[dict[str, object]]:
                cols: dict[str, list[object]] = {}
                for name, kind in spec.items():
                    column = table[name]
                    if kind == "int":
                        cols[name] = [int(v) for v in column]  # type: ignore[union-attr]
                    elif kind == "float":
                        cols[name] = [_restore(v) for v in column]  # type: ignore[union-attr]
                    else:
                        cols[name] = list(intern_of(f"{table_name}.{name}", column))
                m = len(cols["decision"])
                for name, values in cols.items():
                    if len(values) != m:
                        raise ProvenanceError(
                            f"{table_name}.{name} has {len(values)} rows, "
                            f"decision column has {m}"
                        )
                rows = [
                    {name: cols[name][i] for name in spec} for i in range(m)
                ]
                for r in rows:
                    decision = int(r["decision"])  # type: ignore[arg-type]
                    if not 0 <= decision < n:
                        raise ProvenanceError(
                            f"{table_name}: decision index {decision} outside "
                            f"the {n}-row decision table"
                        )
                return rows

            pred_rows = rows_of(
                "predicates",
                raw["predicates"],
                {
                    "decision": "int",
                    "eq": "str",
                    "subject": "str",
                    "lhs": "float",
                    "threshold": "float",
                    "passed": "int",
                },
            )
            cand_rows = rows_of(
                "candidates",
                raw["candidates"],
                {
                    "decision": "int",
                    "role": "str",
                    "dc": "int",
                    "sid": "int",
                    "verdict": "str",
                    "cause": "str",
                    "value": "float",
                    "threshold": "float",
                },
            )
            preds_by_decision: dict[int, list[PredicateEval]] = {}
            for r in pred_rows:
                preds_by_decision.setdefault(int(r["decision"]), []).append(  # type: ignore[arg-type]
                    PredicateEval(
                        eq=str(r["eq"]),
                        subject=str(r["subject"]),
                        lhs=float(r["lhs"]),  # type: ignore[arg-type]
                        threshold=float(r["threshold"]),  # type: ignore[arg-type]
                        passed=bool(r["passed"]),
                    )
                )
            cands_by_decision: dict[int, list[CandidateEval]] = {}
            for r in cand_rows:
                cands_by_decision.setdefault(int(r["decision"]), []).append(  # type: ignore[arg-type]
                    CandidateEval(
                        role=str(r["role"]),
                        dc=int(r["dc"]),  # type: ignore[arg-type]
                        sid=int(r["sid"]),  # type: ignore[arg-type]
                        verdict=str(r["verdict"]),
                        cause=str(r["cause"]),
                        value=float(r["value"]),  # type: ignore[arg-type]
                        threshold=float(r["threshold"]),  # type: ignore[arg-type]
                    )
                )
            records = tuple(
                DecisionRecord(
                    epoch=columns["epoch"][i],  # type: ignore[arg-type]
                    partition=columns["partition"][i],  # type: ignore[arg-type]
                    branch=columns["branch"][i],  # type: ignore[arg-type]
                    action=columns["action"][i],  # type: ignore[arg-type]
                    reason=columns["reason"][i],  # type: ignore[arg-type]
                    target_sid=columns["target_sid"][i],  # type: ignore[arg-type]
                    target_dc=columns["target_dc"][i],  # type: ignore[arg-type]
                    source_sid=columns["source_sid"][i],  # type: ignore[arg-type]
                    fate=columns["fate"][i],  # type: ignore[arg-type]
                    fate_cause=columns["fate_cause"][i],  # type: ignore[arg-type]
                    avg_query=columns["avg_query"][i],  # type: ignore[arg-type]
                    holder_traffic=columns["holder_traffic"][i],  # type: ignore[arg-type]
                    unserved=columns["unserved"][i],  # type: ignore[arg-type]
                    mean_traffic=columns["mean_traffic"][i],  # type: ignore[arg-type]
                    replica_count=columns["replica_count"][i],  # type: ignore[arg-type]
                    rmin=columns["rmin"][i],  # type: ignore[arg-type]
                    holder_dc=columns["holder_dc"][i],  # type: ignore[arg-type]
                    predicates=tuple(preds_by_decision.get(i, ())),
                    candidates=tuple(cands_by_decision.get(i, ())),
                )
                for i in range(n)
            )
            return cls(
                records=records,
                meta=dict(raw.get("meta", {})),
                budget=int(raw.get("budget", 0)),
                noop_dropped={
                    int(epoch): int(count)
                    for epoch, count in raw.get("noop_dropped", {}).items()
                },
            )
        except ProvenanceError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ProvenanceError(f"malformed {PROV_FORMAT} artifact: {exc}") from exc

    def save(self, path: str | pathlib.Path) -> None:
        """Write the artifact as compact JSON (still ``jq``-able)."""
        payload = json.dumps(
            self.to_dict(), separators=(",", ":"), allow_nan=False
        )
        pathlib.Path(path).write_text(payload + "\n")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> ProvArtifact:
        """Read an artifact back; raises :class:`ProvenanceError` on any
        format problem (including a file that is not JSON at all)."""
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ProvenanceError(
                f"cannot read provenance artifact {path}: {exc}"
            ) from exc
        return cls.from_dict(raw)
