"""Decision-granular diff of two provenance ledgers.

``repro provdiff A B`` aligns two runs decision-by-decision (by epoch,
partition and within-pair sequence) and reports the *first* divergent
decision with the exact Eq. term that differed — "epoch 3, partition
17, eq12 threshold (β·q̄): 6 vs 6.6" — which is the decision-level
answer the sanitizer's epoch-level bisection cannot give.

Comparison is exact (this repo's determinism claim is bit-level):
floats must match exactly, except that NaN == NaN counts as equal so an
unrecorded term never reads as a divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .artifact import ProvArtifact
from .explain import _EQ_INFO
from .records import DecisionRecord

__all__ = ["Divergence", "ProvDiffReport", "diff_provenance"]

#: How many divergences beyond the first are kept in the report.
_MAX_KEPT = 25

_RECORD_FIELDS: tuple[tuple[str, str], ...] = (
    ("branch", "branch"),
    ("action", "action kind"),
    ("reason", "action reason"),
    ("target_dc", "target datacenter"),
    ("target_sid", "target server"),
    ("source_sid", "source server"),
    ("fate", "apply fate"),
    ("fate_cause", "skip cause"),
    ("replica_count", "replica count"),
    ("rmin", "r_min"),
    ("holder_dc", "holder datacenter"),
    ("avg_query", "q̄_it (Eq. 10)"),
    ("holder_traffic", "tr_iit (Eq. 11)"),
    ("unserved", "unserved queries"),
    ("mean_traffic", "t̄r_i (Eq. 17)"),
)


def _same(a: object, b: object) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    return a == b


def _show(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value!r}"
    return str(value)


def _eq_field_term(eq: str, which: str) -> str:
    info = _EQ_INFO.get(eq)
    if info is None:
        return f"{eq} {which}"
    _, lhs_sym, thr_sym, _, _ = info
    if which == "lhs":
        return f"{eq} lhs ({lhs_sym})"
    if which == "threshold":
        return f"{eq} threshold ({thr_sym})"
    return f"{eq} {which}"


@dataclass(frozen=True)
class Divergence:
    """One aligned decision pair that differs, and where."""

    epoch: int
    partition: int
    seq: int
    term: str
    a: str
    b: str

    def describe(self) -> str:
        return (
            f"epoch {self.epoch}, partition {self.partition} "
            f"(decision #{self.seq}): {self.term}: {self.a} vs {self.b}"
        )


@dataclass
class ProvDiffReport:
    """Outcome of aligning two ledgers decision-by-decision."""

    total_a: int
    total_b: int
    aligned: int
    divergent_decisions: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    @property
    def identical(self) -> bool:
        return self.divergent_decisions == 0 and self.total_a == self.total_b

    @property
    def exit_code(self) -> int:
        return 0 if self.identical else 1

    def describe(self) -> str:
        lines = [
            f"decisions: {self.total_a} vs {self.total_b}, "
            f"{self.aligned} aligned pairs"
        ]
        if self.identical:
            lines.append("IDENTICAL decision-for-decision.")
            return "\n".join(lines)
        if self.first is not None:
            lines.append(f"FIRST DIVERGENCE: {self.first.describe()}")
        extra = self.divergent_decisions - 1
        if extra > 0:
            shown = min(len(self.divergences) - 1, _MAX_KEPT - 1)
            lines.append(
                f"{self.divergent_decisions} divergent decisions total"
                + (f" (next {shown} shown):" if shown else ".")
            )
            for div in self.divergences[1:_MAX_KEPT]:
                lines.append(f"  {div.describe()}")
            if self.divergent_decisions > _MAX_KEPT:
                lines.append(
                    f"  ... {self.divergent_decisions - _MAX_KEPT} more elided"
                )
        return "\n".join(lines)


def _first_difference(a: DecisionRecord, b: DecisionRecord) -> tuple[str, str, str] | None:
    """(term, a_value, b_value) for the first differing field, if any."""
    for attr, term in _RECORD_FIELDS:
        va, vb = getattr(a, attr), getattr(b, attr)
        if not _same(va, vb):
            return term, _show(va), _show(vb)
    if len(a.predicates) != len(b.predicates):
        return (
            "predicate count",
            str(len(a.predicates)),
            str(len(b.predicates)),
        )
    for pa, pb in zip(a.predicates, b.predicates):
        if pa.eq != pb.eq:
            return "predicate order", pa.eq, pb.eq
        if pa.subject != pb.subject:
            return f"{pa.eq} subject", pa.subject, pb.subject
        if not _same(pa.lhs, pb.lhs):
            return _eq_field_term(pa.eq, "lhs"), _show(pa.lhs), _show(pb.lhs)
        if not _same(pa.threshold, pb.threshold):
            return (
                _eq_field_term(pa.eq, "threshold"),
                _show(pa.threshold),
                _show(pb.threshold),
            )
        if pa.passed != pb.passed:
            return f"{pa.eq} verdict", str(pa.passed), str(pb.passed)
    if len(a.candidates) != len(b.candidates):
        return (
            "candidate count",
            str(len(a.candidates)),
            str(len(b.candidates)),
        )
    for ca, cb in zip(a.candidates, b.candidates):
        where = f"{ca.role} dc {ca.dc}"
        if ca.role != cb.role or ca.dc != cb.dc:
            return (
                "candidate order",
                f"{ca.role} dc {ca.dc}",
                f"{cb.role} dc {cb.dc}",
            )
        if ca.sid != cb.sid:
            return f"{where} server", str(ca.sid), str(cb.sid)
        if ca.verdict != cb.verdict:
            return f"{where} verdict", ca.verdict, cb.verdict
        if ca.cause != cb.cause:
            return f"{where} cause", ca.cause, cb.cause
        if not _same(ca.value, cb.value):
            return f"{where} score", _show(ca.value), _show(cb.value)
        if not _same(ca.threshold, cb.threshold):
            return f"{where} threshold", _show(ca.threshold), _show(cb.threshold)
    return None


def _keyed(art: ProvArtifact) -> dict[tuple[int, int, int], DecisionRecord]:
    seq: dict[tuple[int, int], int] = {}
    out: dict[tuple[int, int, int], DecisionRecord] = {}
    for rec in art.records:
        pair = (rec.epoch, rec.partition)
        n = seq.get(pair, 0)
        seq[pair] = n + 1
        out[(rec.epoch, rec.partition, n)] = rec
    return out


def diff_provenance(a: ProvArtifact, b: ProvArtifact) -> ProvDiffReport:
    """Align two ledgers and report divergences in (epoch, partition) order."""
    keyed_a, keyed_b = _keyed(a), _keyed(b)
    report = ProvDiffReport(
        total_a=len(a.records), total_b=len(b.records), aligned=0
    )
    for key in sorted(set(keyed_a) | set(keyed_b)):
        epoch, partition, seq = key
        rec_a, rec_b = keyed_a.get(key), keyed_b.get(key)
        if rec_a is None or rec_b is None:
            present = rec_b if rec_a is None else rec_a
            report.divergent_decisions += 1
            if len(report.divergences) < _MAX_KEPT:
                report.divergences.append(
                    Divergence(
                        epoch=epoch,
                        partition=partition,
                        seq=seq,
                        term="decision presence",
                        a="absent" if rec_a is None else f"{present.action}",
                        b="absent" if rec_b is None else f"{present.action}",
                    )
                )
            continue
        report.aligned += 1
        diff = _first_difference(rec_a, rec_b)
        if diff is not None:
            term, va, vb = diff
            report.divergent_decisions += 1
            if len(report.divergences) < _MAX_KEPT:
                report.divergences.append(
                    Divergence(
                        epoch=epoch,
                        partition=partition,
                        seq=seq,
                        term=term,
                        a=va,
                        b=vb,
                    )
                )
    return report
