"""The :class:`ProvenanceRecorder`: decision ledger capture.

The recorder is attached to a policy's decision tree (the RFH tree
opens a :class:`~repro.obs.provenance.records.DecisionDraft` per
partition per epoch and closes it with the emitted actions) and to the
engine's apply phase (:meth:`ProvenanceRecorder.note_fate` stamps each
action's applied/skipped fate back onto its decision record).  Baseline
policies that never open drafts still get minimal synthesized records
per applied/skipped action, so the lineage guarantee — every trace
action has a provenance record — holds for every policy.

Budget: the ledger keeps at most ``budget`` records.  When the cap is
exceeded the *oldest no-op* records (``action == "none"`` and
``fate == "none"``) are dropped first, deterministically, and the count
of drops per epoch is kept in :attr:`ProvenanceRecorder.noop_dropped`
so a reader can tell compaction from absence.  Records that carry an
action are never dropped.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .artifact import ProvArtifact
from .records import DecisionDraft, DecisionRecord

__all__ = ["DEFAULT_BUDGET", "ProvenanceRecorder"]

#: Default ledger budget (decision records kept before compaction).
DEFAULT_BUDGET = 50_000


def _action_fields(action: object) -> tuple[str, str, int, int]:
    """(kind, reason, target_sid, source_sid) for any shipped action."""
    kind = type(action).__name__.lower()
    reason = str(getattr(action, "reason", ""))
    if kind == "suicide":
        return kind, reason, int(getattr(action, "sid", -1)), -1
    target = int(getattr(action, "target_sid", -1))
    source = int(getattr(action, "source_sid", -1))
    return kind, reason, target, source


class ProvenanceRecorder:
    """Accumulates :class:`DecisionRecord` rows across a run."""

    def __init__(self, budget: int = DEFAULT_BUDGET) -> None:
        if budget < 1:
            raise ValueError(f"provenance budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self.meta: dict[str, object] = {}
        self._records: list[DecisionRecord] = []
        self._noop_dropped: dict[int, int] = {}
        # FIFO of record indices awaiting a fate, keyed by (partition,
        # action kind); valid for the current epoch only.
        self._pending: dict[tuple[int, str], list[int]] = {}
        self._pending_epoch = -1

    # ------------------------------------------------------------------
    # Decision-phase API (called by the instrumented decision tree)
    # ------------------------------------------------------------------
    def open(
        self,
        *,
        epoch: int,
        partition: int,
        avg_query: float,
        holder_traffic: float,
        unserved: float,
        mean_traffic: float,
        replica_count: int,
        rmin: int,
        holder_dc: int,
    ) -> DecisionDraft:
        """Start a draft for one partition's evaluation this epoch."""
        self._roll_epoch(epoch)
        return DecisionDraft(
            epoch=int(epoch),
            partition=int(partition),
            avg_query=float(avg_query),
            holder_traffic=float(holder_traffic),
            unserved=float(unserved),
            mean_traffic=float(mean_traffic),
            replica_count=int(replica_count),
            rmin=int(rmin),
            holder_dc=int(holder_dc),
        )

    def close(
        self,
        draft: DecisionDraft,
        actions: Iterable[object],
        *,
        dc_of: Callable[[int], int] | None = None,
    ) -> None:
        """Seal a draft into a record, registering its actions for fate.

        ``dc_of`` (sid -> datacenter index) resolves the target
        datacenter of the decided action when available.
        """
        record = DecisionRecord(
            epoch=draft.epoch,
            partition=draft.partition,
            branch=draft.branch,
            avg_query=draft.avg_query,
            holder_traffic=draft.holder_traffic,
            unserved=draft.unserved,
            mean_traffic=draft.mean_traffic,
            replica_count=draft.replica_count,
            rmin=draft.rmin,
            holder_dc=draft.holder_dc,
            predicates=tuple(draft.predicates),
            candidates=tuple(draft.candidates),
        )
        index = len(self._records)
        for action in actions:
            kind, reason, target_sid, source_sid = _action_fields(action)
            record.action = kind
            record.reason = reason
            record.target_sid = target_sid
            record.source_sid = source_sid
            if dc_of is not None and target_sid >= 0:
                record.target_dc = int(dc_of(target_sid))
            self._pending.setdefault((record.partition, kind), []).append(index)
            break  # grow XOR shrink: at most one action per partition
        self._records.append(record)
        self._compact()

    # ------------------------------------------------------------------
    # Apply-phase API (called by the engine)
    # ------------------------------------------------------------------
    def note_fate(
        self,
        epoch: int,
        kind: str,
        action: object,
        fate: str,
        cause: str = "",
        target_dc: int = -1,
    ) -> None:
        """Stamp an action's applied/skipped fate onto its record.

        Matches the oldest pending record for ``(partition, kind)``; if
        none exists (a policy that does not open drafts) a minimal
        record is synthesized so the ledger still mirrors the trace.
        """
        self._roll_epoch(epoch)
        partition = int(getattr(action, "partition", -1))
        queue = self._pending.get((partition, kind))
        if queue:
            record = self._records[queue.pop(0)]
            if not queue:
                del self._pending[(partition, kind)]
            record.fate = fate
            record.fate_cause = cause
            if target_dc >= 0:
                record.target_dc = int(target_dc)
            return
        kind2, reason, target_sid, source_sid = _action_fields(action)
        self._records.append(
            DecisionRecord(
                epoch=int(epoch),
                partition=partition,
                branch="",
                action=kind2,
                reason=reason,
                target_sid=target_sid,
                target_dc=int(target_dc),
                source_sid=source_sid,
                fate=fate,
                fate_cause=cause,
            )
        )
        self._compact()

    # ------------------------------------------------------------------
    def _roll_epoch(self, epoch: int) -> None:
        if epoch != self._pending_epoch:
            # A pending action that never received a fate keeps
            # fate == "none"; the cross-check will surface it.
            self._pending.clear()
            self._pending_epoch = epoch

    def _compact(self) -> None:
        overage = len(self._records) - self.budget
        if overage <= 0:
            return
        kept: list[DecisionRecord] = []
        for rec in self._records:
            if overage > 0 and rec.is_noop:
                self._noop_dropped[rec.epoch] = self._noop_dropped.get(rec.epoch, 0) + 1
                overage -= 1
            else:
                kept.append(rec)
        # Indices in the pending map are invalidated by compaction; remap
        # by identity so in-flight fates still land on the right record.
        if self._pending:
            position = {id(rec): i for i, rec in enumerate(kept)}
            for key, queue in list(self._pending.items()):
                remapped = [
                    position[id(self._records[i])]
                    for i in queue
                    if id(self._records[i]) in position
                ]
                if remapped:
                    self._pending[key] = remapped
                else:
                    del self._pending[key]
        self._records = kept

    # ------------------------------------------------------------------
    @property
    def records(self) -> tuple[DecisionRecord, ...]:
        return tuple(self._records)

    @property
    def noop_dropped(self) -> dict[int, int]:
        return dict(self._noop_dropped)

    def artifact(self) -> ProvArtifact:
        """Freeze the ledger into a saveable artifact."""
        self._compact()
        return ProvArtifact(
            records=tuple(self._records),
            meta=dict(self.meta),
            budget=self.budget,
            noop_dropped=dict(self._noop_dropped),
        )
