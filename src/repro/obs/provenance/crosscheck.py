"""The lineage guarantee: provenance ↔ trace cross-validation.

Every applied action in the engine's trace must have a matching
provenance record that says it was applied, and vice versa.  The check
compares the two streams as multisets of ``(epoch, kind, partition,
server)`` so ordering differences cannot mask a lost or invented
record.
"""

from __future__ import annotations

from typing import Iterable

from .artifact import ProvArtifact

__all__ = ["crosscheck_trace"]

#: Trace record kinds that correspond to applied policy actions.
_ACTION_KINDS = ("replicate", "migrate", "suicide")


def _trace_key(event: object) -> tuple[int, str, int, int] | None:
    kind = str(getattr(event, "kind", ""))
    if kind not in _ACTION_KINDS:
        return None
    return (
        int(getattr(event, "epoch", -1)),
        kind,
        int(getattr(event, "partition", -1)),
        int(getattr(event, "server", -1)),
    )


def crosscheck_trace(artifact: ProvArtifact, events: Iterable[object]) -> list[str]:
    """Mismatches between applied provenance records and trace actions.

    Returns human-readable mismatch strings; an empty list means the
    lineage guarantee holds.
    """
    prov: dict[tuple[int, str, int, int], int] = {}
    for rec in artifact.records:
        if rec.fate != "applied" or rec.action == "none":
            continue
        key = (rec.epoch, rec.action, rec.partition, rec.target_sid)
        prov[key] = prov.get(key, 0) + 1
    trace: dict[tuple[int, str, int, int], int] = {}
    for event in events:
        key2 = _trace_key(event)
        if key2 is not None:
            trace[key2] = trace.get(key2, 0) + 1
    mismatches: list[str] = []
    for key in sorted(set(prov) | set(trace)):
        n_prov, n_trace = prov.get(key, 0), trace.get(key, 0)
        if n_prov != n_trace:
            epoch, kind, partition, server = key
            mismatches.append(
                f"epoch {epoch} {kind} partition {partition} server {server}: "
                f"{n_prov} applied provenance record(s) vs {n_trace} trace event(s)"
            )
    return mismatches
