"""Decision provenance: record *why* every RFH action happened.

The ledger captures each partition's Fig. 2 evaluation per epoch —
every threshold predicate with its intermediate terms, every candidate
with its verdict, the chosen action and its engine fate — persists it
as a ``repro-prov`` v1 ``.prov.json`` artifact, and answers questions
about it (``repro explain``, ``repro provdiff``).
"""

from .artifact import PROV_FORMAT, PROV_VERSION, ProvArtifact
from .crosscheck import crosscheck_trace
from .explain import render_explanation
from .provdiff import Divergence, ProvDiffReport, diff_provenance
from .recorder import DEFAULT_BUDGET, ProvenanceRecorder
from .records import (
    CandidateEval,
    DecisionDraft,
    DecisionRecord,
    PredicateEval,
)

__all__ = [
    "PROV_FORMAT",
    "PROV_VERSION",
    "ProvArtifact",
    "crosscheck_trace",
    "render_explanation",
    "Divergence",
    "ProvDiffReport",
    "diff_provenance",
    "DEFAULT_BUDGET",
    "ProvenanceRecorder",
    "CandidateEval",
    "DecisionDraft",
    "DecisionRecord",
    "PredicateEval",
]
