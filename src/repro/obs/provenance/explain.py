"""Render a ``.prov.json`` ledger as a human-readable causal narrative.

``repro explain RUN.prov.json --partition P`` answers "why did this
partition get that action?" with the actual Eq. 12/13/15/16 numbers:
which predicate fired, by how much (slack), which candidates were
considered and why the losers lost.  ``--why-not DC`` inverts the
question: for every recorded decision it names the gate that kept the
given datacenter from receiving a copy and what would have had to
change.

Output is byte-stable for a fixed artifact: floats are formatted with a
fixed-precision formatter and all iteration orders are deterministic.
"""

from __future__ import annotations

import math

from ...errors import ProvenanceError
from .artifact import ProvArtifact
from .records import CandidateEval, DecisionRecord, PredicateEval

__all__ = ["render_explanation"]

#: Cap on fully-detailed action decisions when no ``--epoch`` is given.
_MAX_DETAILED = 12
#: Cap on per-epoch lines in the ``--why-not`` section.
_MAX_WHY_NOT = 15

# eq tag -> (label, lhs symbol, threshold symbol, comparator, direction)
# direction "ge": predicate holds when lhs >= threshold (slack = lhs-thr)
# direction "le": predicate holds when lhs <= threshold (slack = thr-lhs)
_EQ_INFO: dict[str, tuple[str, str, str, str, str]] = {
    "eq14": ("Eq. 14 availability floor", "replicas", "r_min", ">=", "ge"),
    "eq14-next": ("Eq. 14 floor w/o one copy", "replicas-1", "r_min", ">=", "ge"),
    "blocked": ("blocked-queries gate", "unserved", "tol(q̄)", ">", "ge"),
    "eq12": ("Eq. 12 overload (smoothed)", "tr_iit", "β·q̄", ">=", "ge"),
    "eq12-raw": ("Eq. 12 overload (raw epoch)", "tr_ii", "β·q̄", ">=", "ge"),
    "eq16": ("Eq. 16 migration benefit", "tr_ij−tr_ik", "μ·t̄r_i", ">=", "ge"),
    "maturity": ("replica maturity", "age", "warm-up", ">=", "ge"),
    "headroom-blocked": ("suicide headroom (blocked)", "unserved", "½·tol(q̄)", "<=", "le"),
    "headroom-load": ("suicide headroom (load)", "tr_iit", "½·β·q̄", "<", "le"),
}


def eq_term(eq: str) -> str:
    """The paper-notation threshold term an eq tag compares against."""
    info = _EQ_INFO.get(eq)
    if info is None:
        return eq
    return f"{eq} threshold ({info[2]})"


def _num(x: float) -> str:
    if math.isnan(x):
        return "n/a"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    text = f"{x:.4f}".rstrip("0").rstrip(".")
    return text if text else "0"


def _predicate_line(pred: PredicateEval) -> str:
    label, lhs_sym, thr_sym, cmp_sym, direction = _EQ_INFO.get(
        pred.eq, (pred.eq, "lhs", "threshold", ">=", "ge")
    )
    if direction == "le":
        slack = pred.threshold - pred.lhs
    else:
        slack = pred.lhs - pred.threshold
    comparison = (
        f"{lhs_sym}={_num(pred.lhs)} {cmp_sym} {thr_sym}={_num(pred.threshold)}"
    )
    if pred.passed:
        verdict = f"holds (slack {_num(slack)})"
    else:
        verdict = f"fails (needs {_num(-slack)} more)"
    subject = f" [{pred.subject}]" if pred.subject else ""
    return f"    {label:<28} {comparison:<40} {verdict}{subject}"


def _candidate_line(cand: CandidateEval) -> str:
    if cand.sid >= 0 and cand.dc >= 0:
        where = f"server {cand.sid} (dc {cand.dc})"
    elif cand.sid >= 0:
        where = f"server {cand.sid}"
    else:
        where = f"dc {cand.dc}"
    score = ""
    if not math.isnan(cand.value):
        score = f" value={_num(cand.value)}"
        if not math.isnan(cand.threshold):
            score += f" vs {_num(cand.threshold)}"
    verdict = "CHOSEN" if cand.verdict == "chosen" else "rejected"
    cause = f" ({cand.cause})" if cand.cause else ""
    hint = ""
    if (
        cand.verdict != "chosen"
        and not math.isnan(cand.value)
        and not math.isnan(cand.threshold)
        and cand.value < cand.threshold
    ):
        hint = f" — needed {_num(cand.threshold - cand.value)} more"
    return f"    {cand.role:<18} {where:<18}{score}  {verdict}{cause}{hint}"


def _action_phrase(rec: DecisionRecord) -> str:
    if rec.action == "none":
        return "no action"
    reason = f" ({rec.reason})" if rec.reason else ""
    if rec.action == "suicide":
        target = f" of server {rec.target_sid}"
    else:
        dc = f" in dc {rec.target_dc}" if rec.target_dc >= 0 else ""
        target = f" → server {rec.target_sid}{dc}"
        if rec.action == "migrate" and rec.source_sid >= 0:
            target = f" from server {rec.source_sid}{target}"
    return f"{rec.action}{reason}{target}"


def _fate_phrase(rec: DecisionRecord) -> str:
    if rec.fate == "applied":
        return "applied"
    if rec.fate == "skipped":
        cause = f" ({rec.fate_cause})" if rec.fate_cause else ""
        return f"skipped{cause}"
    return "no fate recorded"


def _record_detail(rec: DecisionRecord) -> list[str]:
    lines = [
        f"[epoch {rec.epoch}] partition {rec.partition} — branch: "
        f"{rec.branch or 'synthesized'} — {_action_phrase(rec)} — fate: "
        f"{_fate_phrase(rec)}"
    ]
    context = (
        f"  context: q̄={_num(rec.avg_query)}  tr_iit={_num(rec.holder_traffic)}"
        f"  unserved={_num(rec.unserved)}  t̄r_i={_num(rec.mean_traffic)}"
    )
    if rec.replica_count >= 0:
        context += f"  replicas={rec.replica_count}/r_min={rec.rmin}"
    if rec.holder_dc >= 0:
        context += f"  holder dc={rec.holder_dc}"
    lines.append(context)
    if rec.predicates:
        lines.append("  predicates:")
        lines.extend(_predicate_line(p) for p in rec.predicates)
    if rec.candidates:
        lines.append("  candidates:")
        lines.extend(_candidate_line(c) for c in rec.candidates)
    return lines


def _record_summary(rec: DecisionRecord) -> str:
    return (
        f"[epoch {rec.epoch}] branch: {rec.branch or 'synthesized'} — "
        f"{_action_phrase(rec)} — fate: {_fate_phrase(rec)}"
    )


def _why_not(records: tuple[DecisionRecord, ...], dc: int) -> list[str]:
    lines = [f"Why not dc {dc}?"]
    emitted = 0
    for rec in records:
        if emitted >= _MAX_WHY_NOT:
            lines.append("  ... (further epochs elided)")
            break
        if rec.target_dc == dc and rec.action in ("replicate", "migrate"):
            lines.append(
                f"  [epoch {rec.epoch}] it WAS chosen: {_action_phrase(rec)}"
                f" — fate: {_fate_phrase(rec)}"
            )
            emitted += 1
            continue
        cands = [c for c in rec.candidates if c.dc == dc]
        if cands:
            for cand in cands:
                detail = f"as {cand.role}"
                if not math.isnan(cand.value) and not math.isnan(cand.threshold):
                    detail += f": value={_num(cand.value)} vs {_num(cand.threshold)}"
                cause = cand.cause or "rejected"
                hint = ""
                if (
                    not math.isnan(cand.value)
                    and not math.isnan(cand.threshold)
                    and cand.value < cand.threshold
                ):
                    hint = (
                        f" — its traffic would have had to rise by "
                        f"{_num(cand.threshold - cand.value)}"
                    )
                lines.append(
                    f"  [epoch {rec.epoch}] considered {detail} — {cause}{hint}"
                )
                emitted += 1
            continue
        eq12 = next((p for p in rec.predicates if p.eq == "eq12"), None)
        if eq12 is not None and not eq12.passed:
            lines.append(
                f"  [epoch {rec.epoch}] load branch never engaged: "
                f"tr_iit={_num(eq12.lhs)} < β·q̄={_num(eq12.threshold)} "
                f"(needed {_num(eq12.threshold - eq12.lhs)} more holder traffic)"
            )
            emitted += 1
        elif rec.branch not in ("load", ""):
            lines.append(
                f"  [epoch {rec.epoch}] decision took the {rec.branch or 'none'} "
                f"branch; dc {dc} was never in the candidate set"
            )
            emitted += 1
    if emitted == 0:
        lines.append("  no recorded decision ever evaluated this datacenter.")
    return lines


def render_explanation(
    artifact: ProvArtifact,
    partition: int,
    *,
    epoch: int | None = None,
    why_not: int | None = None,
) -> str:
    """Human-readable causal narrative for one partition's decisions."""
    records = artifact.for_partition(partition, epoch)
    if not records:
        where = f" at epoch {epoch}" if epoch is not None else ""
        raise ProvenanceError(
            f"no provenance records for partition {partition}{where} "
            f"(recorded partitions: "
            f"{', '.join(map(str, artifact.partitions())) or 'none'})"
        )
    lines: list[str] = []
    meta = artifact.meta
    tags = "  ".join(
        f"{key}={meta[key]}" for key in sorted(meta) if not isinstance(meta[key], dict)
    )
    lines.append(f"Provenance: {tags}" if tags else "Provenance ledger")
    epochs = [rec.epoch for rec in records]
    dropped = artifact.noop_dropped_total
    drop_note = f"; {dropped} no-op decisions compacted away run-wide" if dropped else ""
    lines.append(
        f"Partition {partition} — {len(records)} decisions recorded "
        f"(epochs {min(epochs)}..{max(epochs)}){drop_note}"
    )
    lines.append("")
    detailed = [rec for rec in records if rec.action != "none" or epoch is not None]
    noops = [rec for rec in records if rec.action == "none" and epoch is None]
    shown = detailed[:_MAX_DETAILED]
    for rec in shown:
        lines.extend(_record_detail(rec))
        lines.append("")
    if len(detailed) > len(shown):
        lines.append(
            f"... {len(detailed) - len(shown)} further action decisions elided "
            f"(narrow with --epoch)"
        )
        lines.append("")
    if noops:
        lines.append(
            f"{len(noops)} quiet epochs (no action; re-run with --epoch E for "
            f"any epoch's full predicate table). Quiet epochs: "
            + _span_text([rec.epoch for rec in noops])
        )
        lines.append("")
    if why_not is not None:
        lines.extend(_why_not(records, why_not))
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def _span_text(epochs: list[int]) -> str:
    """Compress sorted epoch lists to ``0-3, 7, 9-12`` spans."""
    spans: list[str] = []
    start = prev = epochs[0]
    for e in epochs[1:]:
        if e == prev + 1:
            prev = e
            continue
        spans.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = e
    spans.append(f"{start}-{prev}" if prev > start else f"{start}")
    if len(spans) > 20:
        spans = spans[:20] + ["..."]
    return ", ".join(spans)
