"""Per-epoch time-series recording with bounded memory.

The engine drives one :class:`TimeseriesRecorder` per run: once per
epoch it hands over the epoch's metric values, per-datacenter traffic,
instrument scalars and phase timings as one flat ``{column: value}``
row.  The recorder stores rows columnar (one float list per signal) and
keeps memory bounded by two mechanisms:

* a **sampling stride** — only epochs divisible by ``stride`` are
  accepted at all (markers are always kept);
* a **point budget** with automatic **2:1 downsampling** — whenever the
  stored frame would exceed ``point_budget`` points, adjacent pairs are
  merged by mean and the internal decimation factor doubles, so a run of
  any length costs at most ``budget`` points per column while every
  stored point remains the exact mean of the epochs it covers.

Downsampling is streaming and deterministic: incoming rows accumulate
in a pending bucket of ``decimation`` samples that is flushed as its
mean, so recorder state never depends on when you look at it.  Column
sets may grow mid-run (a counter first incremented at epoch 500):
earlier points are backfilled with zero, matching counter semantics.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import TsdbError
from .artifact import Marker, TsdbArtifact

__all__ = ["TimeseriesRecorder"]

#: Markers kept before the recorder starts dropping (and counting) them.
MARKER_BUDGET = 4096


class TimeseriesRecorder:
    """Columnar per-epoch sampler with stride + budgeted downsampling.

    Parameters
    ----------
    stride:
        Record every ``stride``-th epoch (default 1: every epoch).
    point_budget:
        Maximum stored points per column; crossing it halves resolution
        (2:1 mean-downsampling) and doubles the internal decimation.
    meta:
        Free-form run metadata stamped into the artifact (policy,
        scenario, seed...).  :func:`repro.experiments.runner.run_experiment`
        fills the standard keys in when they are absent.
    """

    def __init__(
        self,
        *,
        stride: int = 1,
        point_budget: int = 2048,
        meta: dict[str, object] | None = None,
    ) -> None:
        if stride < 1:
            raise TsdbError(f"stride must be >= 1, got {stride}")
        if point_budget < 16:
            raise TsdbError(f"point_budget must be >= 16, got {point_budget}")
        self.stride = stride
        self.point_budget = point_budget
        self.meta: dict[str, object] = dict(meta) if meta else {}
        self._decimation = 1
        self._epochs: list[int] = []
        self._columns: dict[str, list[float]] = {}
        # Pending bucket: sums over the samples accumulated since the
        # last flush (flushed as their mean once `decimation` are in).
        self._pending_sums: dict[str, float] = {}
        self._pending_count = 0
        self._pending_epoch: int | None = None
        self._markers: list[Marker] = []
        self.markers_dropped = 0
        self.samples_seen = 0

    # ------------------------------------------------------------------
    @property
    def decimation(self) -> int:
        """Accepted samples merged per stored point (power of two)."""
        return self._decimation

    @property
    def num_points(self) -> int:
        """Fully-flushed stored points (excludes the pending bucket)."""
        return len(self._epochs)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, epoch: int, row: dict[str, float]) -> None:
        """Record one epoch's flat ``{column: value}`` row.

        Epochs not on the stride grid are ignored.  Non-finite values
        contribute zero, so one bad sample cannot poison a downsampled
        mean.
        """
        self.samples_seen += 1
        if epoch % self.stride != 0:
            return
        if self._pending_epoch is None:
            self._pending_epoch = epoch
        # Grow the column set first so every column sees this sample.
        for name in row:
            if name not in self._columns:
                self._columns[name] = [0.0] * len(self._epochs)
                self._pending_sums[name] = 0.0
        for name, sums in self._pending_sums.items():
            value = float(row.get(name, 0.0))
            if math.isfinite(value):
                self._pending_sums[name] = sums + value
        self._pending_count += 1
        if self._pending_count >= self._decimation:
            self._flush_pending()
            if len(self._epochs) > self.point_budget:
                self._compress()

    def _flush_pending(self) -> None:
        count = self._pending_count
        self._epochs.append(self._pending_epoch)
        for name, total in self._pending_sums.items():
            self._columns[name].append(total / count)
            self._pending_sums[name] = 0.0
        self._pending_count = 0
        self._pending_epoch = None

    def _compress(self) -> None:
        """2:1 downsample the stored frame and double the decimation.

        Runs only right after a flush, so the pending bucket is empty;
        an odd trailing point is pushed back into it (as a half-full
        bucket under the doubled decimation) to keep every stored point
        an exact mean of a contiguous epoch range.
        """
        old = self._decimation
        if len(self._epochs) % 2 == 1:
            self._pending_epoch = self._epochs.pop()
            self._pending_count = old
            for name, values in self._columns.items():
                self._pending_sums[name] = values.pop() * old
        half = len(self._epochs) // 2
        self._epochs = [self._epochs[2 * i] for i in range(half)]
        for name, values in self._columns.items():
            self._columns[name] = [
                (values[2 * i] + values[2 * i + 1]) / 2.0 for i in range(half)
            ]
        self._decimation = old * 2

    # ------------------------------------------------------------------
    # Markers
    # ------------------------------------------------------------------
    def mark(self, epoch: int, kind: str, label: str = "") -> None:
        """Annotate ``epoch`` with an event marker.

        Repeats of the same (epoch, kind, label) fold into one marker
        with a growing count; past :data:`MARKER_BUDGET` distinct
        markers, new ones are dropped and counted in
        ``markers_dropped``.
        """
        if self._markers:
            last = self._markers[-1]
            if last.epoch == epoch and last.kind == kind and last.label == label:
                self._markers[-1] = Marker(epoch, kind, label, last.count + 1)
                return
        if len(self._markers) >= MARKER_BUDGET:
            self.markers_dropped += 1
            return
        self._markers.append(Marker(epoch, kind, label))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def artifact(self) -> TsdbArtifact:
        """Snapshot the recording as a :class:`TsdbArtifact`.

        A partially-filled pending bucket is flushed into the snapshot
        (as the mean of the samples it holds) without disturbing the
        recorder, so this can be called mid-run.
        """
        epochs = list(self._epochs)
        columns = {name: list(values) for name, values in self._columns.items()}
        if self._pending_count > 0:
            epochs.append(self._pending_epoch)
            for name, total in self._pending_sums.items():
                columns[name].append(total / self._pending_count)
        meta = dict(self.meta)
        meta.setdefault("samples_seen", self.samples_seen)
        if self.markers_dropped:
            meta["markers_dropped"] = self.markers_dropped
        return TsdbArtifact(
            epochs=np.array(epochs, dtype=np.int64),
            columns={
                name: np.array(values, dtype=np.float64)
                for name, values in columns.items()
            },
            markers=tuple(self._markers),
            meta=meta,
            stride=self.stride,
            decimation=self._decimation,
        )

    def save(self, path) -> TsdbArtifact:
        """Write :meth:`artifact` to ``path``; returns the artifact."""
        art = self.artifact()
        art.save(path)
        return art

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeseriesRecorder(points={self.num_points}, "
            f"columns={len(self._columns)}, stride={self.stride}, "
            f"decimation={self._decimation})"
        )
