"""The versioned ``.tsdb.json`` time-series artifact.

A :class:`TsdbArtifact` is the on-disk product of one recorded run: a
columnar frame of per-epoch samples (one shared epoch index, one float
column per signal), a list of event markers (membership/chaos events the
dashboard draws as vertical rules), and free-form run metadata (policy,
scenario, seed, ...).  The format is deliberately plain JSON so the
artifacts stay ``jq``-able and diffable in CI without this library.

Column naming convention (shared with the recorder, the diff engine and
the dashboard):

* engine metric series keep their collector name: ``utilization``;
* per-datacenter signals are ``traffic_dc/<dc>``;
* instrument scalars are ``counter/<name>{k=v,...}`` and
  ``gauge/<name>{k=v,...}`` (labels sorted, omitted when empty);
* phase timings are ``phase_s/<phase>`` (seconds per epoch).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

import numpy as np

from ...errors import TsdbError

__all__ = ["TSDB_FORMAT", "TSDB_VERSION", "Marker", "TsdbArtifact"]

#: Magic format tag; a file without it is not a tsdb artifact.
TSDB_FORMAT = "repro-tsdb"
#: Schema version; bumped on any incompatible layout change.
TSDB_VERSION = 1


@dataclass(frozen=True)
class Marker:
    """One annotated event: a vertical rule on every dashboard panel.

    ``count`` folds repeats: thirty servers dying in one epoch is one
    marker with ``count == 30``, not thirty rules on top of each other.
    """

    epoch: int
    kind: str
    label: str = ""
    count: int = 1

    def to_dict(self) -> dict[str, object]:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "label": self.label,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> Marker:
        try:
            return cls(
                epoch=int(raw["epoch"]),
                kind=str(raw["kind"]),
                label=str(raw.get("label", "")),
                count=int(raw.get("count", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TsdbError(f"malformed marker record: {raw!r}") from exc


@dataclass(frozen=True)
class TsdbArtifact:
    """One recorded run: columnar per-epoch samples + markers + metadata."""

    epochs: np.ndarray
    columns: dict[str, np.ndarray]
    markers: tuple[Marker, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)
    #: Epochs between accepted samples (the recorder's configured gate).
    stride: int = 1
    #: Accepted samples averaged per stored point (power of two; grows
    #: when the point budget forces 2:1 downsampling).
    decimation: int = 1

    def __post_init__(self) -> None:
        n = len(self.epochs)
        for name, values in self.columns.items():
            if len(values) != n:
                raise TsdbError(
                    f"column {name!r} has {len(values)} points, "
                    f"epoch index has {n}"
                )

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return len(self.epochs)

    @property
    def effective_stride(self) -> int:
        """Epochs represented by one stored point."""
        return self.stride * self.decimation

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise TsdbError(
                f"no column {name!r}; have {sorted(self.columns)[:20]}..."
            ) from None

    def column_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.columns))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        def clean(values: np.ndarray) -> list[float | None]:
            # JSON has no NaN/Inf; emit null and restore on load.
            return [
                float(v) if math.isfinite(v) else None for v in values
            ]

        return {
            "format": TSDB_FORMAT,
            "version": TSDB_VERSION,
            "meta": dict(self.meta),
            "stride": self.stride,
            "decimation": self.decimation,
            "epochs": [int(e) for e in self.epochs],
            "columns": {name: clean(self.columns[name]) for name in sorted(self.columns)},
            "markers": [m.to_dict() for m in self.markers],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> TsdbArtifact:
        if not isinstance(raw, dict) or raw.get("format") != TSDB_FORMAT:
            raise TsdbError(
                f"not a {TSDB_FORMAT} artifact "
                f"(format={raw.get('format') if isinstance(raw, dict) else raw!r})"
            )
        version = raw.get("version")
        if version != TSDB_VERSION:
            raise TsdbError(
                f"unsupported {TSDB_FORMAT} version {version!r} "
                f"(this build reads version {TSDB_VERSION})"
            )

        def restore(values: list[float | None]) -> np.ndarray:
            return np.array(
                [float("nan") if v is None else float(v) for v in values],
                dtype=np.float64,
            )

        try:
            columns = {
                str(name): restore(values)
                for name, values in raw["columns"].items()
            }
            return cls(
                epochs=np.array([int(e) for e in raw["epochs"]], dtype=np.int64),
                columns=columns,
                markers=tuple(Marker.from_dict(m) for m in raw.get("markers", ())),
                meta=dict(raw.get("meta", {})),
                stride=int(raw.get("stride", 1)),
                decimation=int(raw.get("decimation", 1)),
            )
        except TsdbError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise TsdbError(f"malformed {TSDB_FORMAT} artifact: {exc}") from exc

    def save(self, path: str | pathlib.Path) -> None:
        """Write the artifact to ``path`` as pretty-printed JSON."""
        payload = json.dumps(self.to_dict(), indent=1, allow_nan=False)
        pathlib.Path(path).write_text(payload + "\n")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> TsdbArtifact:
        """Read an artifact back; raises :class:`TsdbError` on any
        format problem (including a file that is not JSON at all)."""
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TsdbError(f"cannot read tsdb artifact {path}: {exc}") from exc
        return cls.from_dict(raw)
