"""Cross-run regression diffing over two ``.tsdb.json`` artifacts.

``repro diff BASELINE.tsdb.json CANDIDATE.tsdb.json`` answers the
question every performance PR raises: *did this change make any metric
trajectory worse?*  The engine aligns the two runs column by column,
computes three summary statistics per shared column —

* **tail mean** — mean over the trailing quarter of points (the
  steady-state estimate the paper's figures read off);
* **peak** — the worst single point (max);
* **cumulative** — the epoch-integrated total (what "total replication
  cost" style figures plot);

— applies per-metric relative + absolute tolerances, and classifies the
column as ``improved`` / ``unchanged`` / ``regressed`` using a polarity
table (is a higher value better, worse, or neutral?).  Neutral columns
out of tolerance are reported as ``changed`` but never fail the diff,
so environment series (``queries``, ``alive_servers``) cannot produce
false gates.  The report renders as text, markdown or JSON, and the CLI
exits non-zero when anything regressed so CI can gate on it.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass, field

import numpy as np

from ...errors import TsdbError
from .artifact import TsdbArtifact

__all__ = [
    "Tolerance",
    "ColumnDiff",
    "DiffReport",
    "column_stats",
    "diff_artifacts",
    "diff_column",
    "polarity_of",
    "render_diff_json",
    "render_diff_markdown",
    "render_diff_text",
    "tolerance_of",
]

#: Fraction of trailing points in the tail-mean window.
TAIL_FRACTION = 0.25

#: The three summary statistics a column is judged on.
STATS = ("tail_mean", "peak", "cumulative")

#: Direction of goodness per column, matched in order: exact name
#: first, then glob patterns.  +1 = higher is better, -1 = lower is
#: better, 0 = neutral (reported, never gated).
POLARITY: tuple[tuple[str, int], ...] = (
    ("utilization", +1),
    ("sla_attainment", +1),
    ("mean_availability", +1),
    ("served", +1),
    ("alive_servers", 0),
    ("queries", 0),
    ("writes", 0),
    ("total_replicas", -1),
    ("avg_replicas", -1),
    ("replication_count", -1),
    ("replication_cost", -1),
    ("migration_count", -1),
    ("migration_cost", -1),
    ("suicide_count", 0),
    ("load_imbalance", -1),
    ("server_load_imbalance", -1),
    ("path_length", -1),
    ("mean_latency_ms", -1),
    ("unserved", -1),
    ("lost_partitions", -1),
    ("skipped_actions", -1),
    ("propagation_cost", -1),
    ("mean_staleness", -1),
    ("stale_replica_fraction", -1),
    ("stale_read_fraction", -1),
    ("propagation_transfers", 0),
    # Families by prefix/suffix.
    ("counter/sla_miss_total*", -1),
    ("counter/invariant_violations_total*", -1),
    ("counter/trace_events_dropped_total*", -1),
    ("counter/partitions_restored_total*", -1),
    ("gauge/total_replicas*", -1),
    ("gauge/alive_servers*", 0),
    ("phase_s/*", -1),
    # Work counters are algorithmic observations: more work at equal
    # output is worth seeing, not worth gating (repro perfdiff
    # --gate-counters exists for the strict stance).
    ("work/*", 0),
    # Decision-mix columns are polarity-neutral: replicating for a
    # different *reason* is a behaviour change worth seeing, but neither
    # direction is inherently better (repro provdiff gives the
    # decision-level answer).
    ("decision/*", 0),
    ("traffic_dc/*", 0),
    ("counter/*", 0),
    ("gauge/*", 0),
)

#: Per-column (relative, absolute) tolerance overrides; the default is
#: ``Tolerance(rel=0.05, abs=1e-9)``.  Noisy or tiny-valued series get
#: wider floors so epsilon wiggles don't page anyone.
DEFAULT_TOLERANCES: tuple[tuple[str, tuple[float, float]], ...] = (
    ("load_imbalance", (0.10, 0.05)),
    ("server_load_imbalance", (0.10, 0.05)),
    ("path_length", (0.05, 0.02)),
    ("mean_latency_ms", (0.05, 1.0)),
    ("unserved", (0.10, 2.0)),
    ("lost_partitions", (0.10, 1.0)),
    ("skipped_actions", (0.25, 5.0)),
    ("suicide_count", (0.25, 5.0)),
    ("sla_attainment", (0.01, 0.002)),
    ("mean_availability", (0.01, 0.001)),
    ("phase_s/*", (0.50, 1e-3)),
    ("work/*", (0.05, 2.0)),
    ("decision/*", (0.25, 5.0)),
    ("counter/*", (0.10, 2.0)),
    ("gauge/*", (0.10, 2.0)),
)


@dataclass(frozen=True)
class Tolerance:
    """A column is unchanged while ``|delta| <= max(abs, rel * |base|)``."""

    rel: float = 0.05
    abs: float = 1e-9

    def allows(self, base: float, delta: float) -> bool:
        return abs(delta) <= max(self.abs, self.rel * abs(base))


def _match(name: str, table) -> object | None:
    """First exact-or-glob match of ``name`` in an (pattern, value) table."""
    for pattern, value in table:
        if pattern == name or fnmatch.fnmatchcase(name, pattern):
            return value
    return None


def polarity_of(name: str) -> int:
    value = _match(name, POLARITY)
    return 0 if value is None else int(value)


def tolerance_of(
    name: str, *, rel: float | None = None, abs_: float | None = None
) -> Tolerance:
    """The effective tolerance for a column.

    Explicit ``rel``/``abs_`` (the CLI's ``--rel-tol``/``--abs-tol``)
    override the per-metric defaults wholesale.
    """
    if rel is not None or abs_ is not None:
        return Tolerance(
            rel=rel if rel is not None else 0.05,
            abs=abs_ if abs_ is not None else 1e-9,
        )
    match = _match(name, DEFAULT_TOLERANCES)
    if match is None:
        return Tolerance()
    return Tolerance(rel=match[0], abs=match[1])


# ----------------------------------------------------------------------
# Per-column statistics
# ----------------------------------------------------------------------
def column_stats(epochs: np.ndarray, values: np.ndarray) -> dict[str, float]:
    """The three judged statistics of one aligned column."""
    if len(values) == 0:
        return {name: 0.0 for name in STATS}
    finite = values[np.isfinite(values)]
    if len(finite) == 0:
        return {name: 0.0 for name in STATS}
    tail = max(1, int(math.ceil(len(values) * TAIL_FRACTION)))
    tail_values = values[-tail:]
    tail_finite = tail_values[np.isfinite(tail_values)]
    # Each stored point represents `step` epochs (downsampled frames
    # integrate wider); derive the step from the epoch grid itself.
    if len(epochs) > 1:
        step = float(np.median(np.diff(epochs)))
    else:
        step = 1.0
    return {
        "tail_mean": float(tail_finite.mean()) if len(tail_finite) else 0.0,
        "peak": float(finite.max()),
        "cumulative": float(np.nansum(values) * step),
    }


def _align(
    base: TsdbArtifact, cand: TsdbArtifact, name: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One column from both runs on a shared epoch grid.

    Identical grids (the common case: same config, same stride) pass
    through untouched; differing grids are linearly interpolated onto
    the coarser of the two, restricted to the overlapping epoch span.
    """
    be, bv = base.epochs, base.column(name)
    ce, cv = cand.epochs, cand.column(name)
    if len(be) == len(ce) and np.array_equal(be, ce):
        return be, bv, cv
    if len(be) == 0 or len(ce) == 0:
        raise TsdbError(f"column {name!r}: a run recorded no points")
    lo = max(be.min(), ce.min())
    hi = min(be.max(), ce.max())
    if hi < lo:
        raise TsdbError(
            f"column {name!r}: runs share no epoch overlap "
            f"(baseline {be.min()}..{be.max()}, "
            f"candidate {ce.min()}..{ce.max()})"
        )
    grid_src = be if len(be) <= len(ce) else ce
    grid = grid_src[(grid_src >= lo) & (grid_src <= hi)]
    return (
        grid,
        np.interp(grid, be, bv),
        np.interp(grid, ce, cv),
    )


# ----------------------------------------------------------------------
# Diff result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnDiff:
    """Verdict for one shared column."""

    name: str
    polarity: int
    tolerance: Tolerance
    base: dict[str, float]
    cand: dict[str, float]
    classification: str  # improved | unchanged | changed | regressed
    #: Stats outside tolerance, with their signed deltas.
    exceeded: dict[str, float] = field(default_factory=dict)

    def delta(self, stat: str) -> float:
        return self.cand[stat] - self.base[stat]

    def rel_delta(self, stat: str) -> float:
        base = self.base[stat]
        # Exact-zero baseline is the degenerate case (relative delta is
        # undefined); a tolerance would misclassify tiny real baselines.
        if base == 0.0:  # repro: noqa[REP004]
            return math.inf if self.delta(stat) != 0.0 else 0.0  # repro: noqa[REP004]
        return self.delta(stat) / abs(base)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "polarity": self.polarity,
            "tolerance": {"rel": self.tolerance.rel, "abs": self.tolerance.abs},
            "baseline": self.base,
            "candidate": self.cand,
            "deltas": {stat: self.delta(stat) for stat in STATS},
            "classification": self.classification,
            "exceeded": dict(self.exceeded),
        }


@dataclass(frozen=True)
class DiffReport:
    """The full cross-run comparison."""

    baseline_meta: dict[str, object]
    candidate_meta: dict[str, object]
    columns: tuple[ColumnDiff, ...]
    only_in_baseline: tuple[str, ...]
    only_in_candidate: tuple[str, ...]

    @property
    def regressed(self) -> tuple[ColumnDiff, ...]:
        return tuple(c for c in self.columns if c.classification == "regressed")

    @property
    def improved(self) -> tuple[ColumnDiff, ...]:
        return tuple(c for c in self.columns if c.classification == "improved")

    @property
    def changed(self) -> tuple[ColumnDiff, ...]:
        return tuple(c for c in self.columns if c.classification == "changed")

    @property
    def unchanged_count(self) -> int:
        return sum(1 for c in self.columns if c.classification == "unchanged")

    @property
    def verdict(self) -> str:
        """``regressed`` > ``improved`` > ``changed`` > ``unchanged``."""
        if self.regressed:
            return "regressed"
        if self.improved:
            return "improved"
        if self.changed:
            return "changed"
        return "unchanged"

    def exit_code(self) -> int:
        return 1 if self.regressed else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "baseline": dict(self.baseline_meta),
            "candidate": dict(self.candidate_meta),
            "verdict": self.verdict,
            "counts": {
                "regressed": len(self.regressed),
                "improved": len(self.improved),
                "changed": len(self.changed),
                "unchanged": self.unchanged_count,
            },
            "columns": [c.to_dict() for c in self.columns],
            "only_in_baseline": list(self.only_in_baseline),
            "only_in_candidate": list(self.only_in_candidate),
        }


# ----------------------------------------------------------------------
# The diff itself
# ----------------------------------------------------------------------
def diff_column(
    base: TsdbArtifact,
    cand: TsdbArtifact,
    name: str,
    *,
    rel: float | None = None,
    abs_: float | None = None,
) -> ColumnDiff:
    epochs, bv, cv = _align(base, cand, name)
    base_stats = column_stats(epochs, bv)
    cand_stats = column_stats(epochs, cv)
    polarity = polarity_of(name)
    tolerance = tolerance_of(name, rel=rel, abs_=abs_)
    exceeded = {
        stat: cand_stats[stat] - base_stats[stat]
        for stat in STATS
        if not tolerance.allows(base_stats[stat], cand_stats[stat] - base_stats[stat])
    }
    if not exceeded:
        classification = "unchanged"
    elif polarity == 0:
        classification = "changed"
    else:
        # Any out-of-tolerance stat moving against the polarity means a
        # regression, even if another stat improved.
        worse = any(math.copysign(1.0, d) != polarity for d in exceeded.values())
        classification = "regressed" if worse else "improved"
    return ColumnDiff(
        name=name,
        polarity=polarity,
        tolerance=tolerance,
        base=base_stats,
        cand=cand_stats,
        classification=classification,
        exceeded=exceeded,
    )


def diff_artifacts(
    baseline: TsdbArtifact,
    candidate: TsdbArtifact,
    *,
    rel: float | None = None,
    abs_: float | None = None,
    columns: tuple[str, ...] | None = None,
) -> DiffReport:
    """Compare two recorded runs column by column.

    ``columns`` restricts the comparison (glob patterns allowed);
    ``rel``/``abs_`` override every per-metric tolerance.
    """
    base_names = set(baseline.columns)
    cand_names = set(candidate.columns)
    shared = sorted(base_names & cand_names)
    if columns:
        shared = [
            name
            for name in shared
            if any(fnmatch.fnmatchcase(name, pat) or pat == name for pat in columns)
        ]
    diffs = tuple(
        diff_column(baseline, candidate, name, rel=rel, abs_=abs_) for name in shared
    )
    return DiffReport(
        baseline_meta=dict(baseline.meta),
        candidate_meta=dict(candidate.meta),
        columns=diffs,
        only_in_baseline=tuple(sorted(base_names - cand_names)),
        only_in_candidate=tuple(sorted(cand_names - base_names)),
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_ARROWS = {"regressed": "✗", "improved": "✓", "changed": "~", "unchanged": "="}


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.3g}"


def _fmt_rel(diff: ColumnDiff, stat: str) -> str:
    rel = diff.rel_delta(stat)
    if math.isinf(rel):
        return "new"
    return f"{rel:+.1%}"


def _meta_line(meta: dict[str, object]) -> str:
    keys = ("policy", "scenario", "seed", "epochs", "chaos")
    parts = [f"{k}={meta[k]}" for k in keys if k in meta and meta[k] is not None]
    return " ".join(parts) if parts else "(no metadata)"


def render_diff_text(report: DiffReport, *, verbose: bool = False) -> str:
    """Fixed-width terminal report; non-unchanged columns only unless
    ``verbose``."""
    lines = [
        f"baseline:  {_meta_line(report.baseline_meta)}",
        f"candidate: {_meta_line(report.candidate_meta)}",
        "",
        f"{'column':<42} {'class':<10} {'tail Δ':>12} {'peak Δ':>12} {'cum Δ':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    for diff in report.columns:
        if diff.classification == "unchanged" and not verbose:
            continue
        mark = _ARROWS[diff.classification]
        lines.append(
            f"{diff.name:<42} {mark} {diff.classification:<8} "
            f"{_fmt_rel(diff, 'tail_mean'):>12} {_fmt_rel(diff, 'peak'):>12} "
            f"{_fmt_rel(diff, 'cumulative'):>14}"
        )
    lines.append("")
    lines.append(
        f"verdict: {report.verdict.upper()} "
        f"({len(report.regressed)} regressed, {len(report.improved)} improved, "
        f"{len(report.changed)} changed, {report.unchanged_count} unchanged)"
    )
    for diff in report.regressed:
        for stat, delta in diff.exceeded.items():
            if math.copysign(1.0, delta) != diff.polarity:
                lines.append(
                    f"  ✗ {diff.name}.{stat}: {_fmt(diff.base[stat])} -> "
                    f"{_fmt(diff.cand[stat])} ({_fmt_rel(diff, stat)}; "
                    f"tolerance rel={diff.tolerance.rel:g} abs={diff.tolerance.abs:g})"
                )
    if report.only_in_baseline:
        lines.append(f"  only in baseline: {', '.join(report.only_in_baseline[:8])}")
    if report.only_in_candidate:
        lines.append(f"  only in candidate: {', '.join(report.only_in_candidate[:8])}")
    return "\n".join(lines)


def render_diff_markdown(report: DiffReport, *, verbose: bool = False) -> str:
    """Markdown report for PR comments / EXPERIMENTS.md."""
    lines = [
        "### Time-series diff",
        "",
        f"- baseline: `{_meta_line(report.baseline_meta)}`",
        f"- candidate: `{_meta_line(report.candidate_meta)}`",
        f"- **verdict: {report.verdict}** — {len(report.regressed)} regressed, "
        f"{len(report.improved)} improved, {len(report.changed)} changed, "
        f"{report.unchanged_count} unchanged",
        "",
        "| column | class | tail Δ | peak Δ | cumulative Δ |",
        "|---|---|---|---|---|",
    ]
    for diff in report.columns:
        if diff.classification == "unchanged" and not verbose:
            continue
        name = diff.name.replace("|", "\\|")
        cls = (
            f"**{diff.classification}**"
            if diff.classification == "regressed"
            else diff.classification
        )
        lines.append(
            f"| `{name}` | {cls} | {_fmt_rel(diff, 'tail_mean')} "
            f"| {_fmt_rel(diff, 'peak')} | {_fmt_rel(diff, 'cumulative')} |"
        )
    if len(lines) == 8:
        lines.append("| _no columns out of tolerance_ | | | | |")
    lines.append("")
    return "\n".join(lines)


def render_diff_json(report: DiffReport) -> str:
    return json.dumps(report.to_dict(), indent=1) + "\n"
