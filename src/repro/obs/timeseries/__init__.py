"""Per-epoch time-series telemetry: record, diff, dashboard.

The trace (PR 1) answers *what happened*; the analysis layer (PR 2)
answers *why*; this subpackage answers *how trajectories compare* —
the paper's whole argument is plotted over time, and so is every
performance claim a later PR will make.

* :class:`TimeseriesRecorder` — the engine drives it once per epoch;
  columnar frames, configurable stride, automatic 2:1 downsampling
  above a point budget (`recorder.py`).
* :class:`TsdbArtifact` — the versioned ``.tsdb.json`` on-disk format
  (`artifact.py`).
* :func:`diff_artifacts` — cross-run regression diffing with
  per-metric tolerances and polarity-aware classification; backs the
  ``repro diff`` CI gate (`diff.py`).
* :func:`render_dashboard` — a zero-dependency offline HTML dashboard
  with inline-SVG panels; backs ``repro dashboard`` (`dashboard.py`).
"""

from .artifact import TSDB_FORMAT, TSDB_VERSION, Marker, TsdbArtifact
from .dashboard import render_dashboard
from .diff import (
    ColumnDiff,
    DiffReport,
    Tolerance,
    diff_artifacts,
    polarity_of,
    render_diff_json,
    render_diff_markdown,
    render_diff_text,
    tolerance_of,
)
from .recorder import TimeseriesRecorder

__all__ = [
    "TSDB_FORMAT",
    "TSDB_VERSION",
    "ColumnDiff",
    "DiffReport",
    "Marker",
    "TimeseriesRecorder",
    "Tolerance",
    "TsdbArtifact",
    "diff_artifacts",
    "polarity_of",
    "render_dashboard",
    "render_diff_json",
    "render_diff_markdown",
    "render_diff_text",
    "tolerance_of",
]
