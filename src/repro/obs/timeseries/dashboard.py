"""Self-contained static HTML dashboard over a ``.tsdb.json`` run.

``repro dashboard RUN.tsdb.json --out dash.html`` renders one offline
HTML file — inline CSS, inline SVG charts, one small inline script for
hover tooltips, zero external references — that opens from ``file://``
with no server and no network.  Panels are built from whichever columns
the artifact carries: utilization, replica counts, per-datacenter
traffic, SLA attainment, unserved queries, action costs, path length,
latency, alive servers and engine phase timings; membership/chaos
markers from the run draw as vertical rules on every time panel.  With
``--compare BASELINE.tsdb.json`` the baseline run overlays as a dashed
line on single-series panels and the stat tiles grow deltas.

Charts follow a fixed visual spec: an eight-slot categorical palette
(validated for color-vision-deficiency separation in both light and
dark mode, which the page supports via ``prefers-color-scheme``), 2px
line marks, hairline gridlines, a legend whenever a panel holds two or
more series, and a collapsible data table per panel so every value is
readable without relying on color at all.
"""

from __future__ import annotations

import html
import json
import math

import numpy as np

from .artifact import Marker, TsdbArtifact

__all__ = ["render_dashboard"]

# ----------------------------------------------------------------------
# Panel geometry & palette
# ----------------------------------------------------------------------
PLOT_W, PLOT_H = 600, 230
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 52, 14, 10, 26

#: Categorical slots (validated light/dark pair set; fixed order, never
#: cycled — panels with more series fold the tail into "Other").
LIGHT_SERIES = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
DARK_SERIES = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)

#: Marker rule colors by event family (status palette — reserved hues,
#: never used for series).
MARKER_STATUS = {
    "server_failure": "critical",
    "link_failure": "critical",
    "server_recovery": "good",
    "link_recovery": "good",
    "partition_restore": "serious",
    "server_join": "neutral",
}

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a; --s4:#eda100;
  --s5:#e87ba4; --s6:#008300; --s7:#4a3aa7; --s8:#e34948;
  --good:#0ca30c; --warning:#fab219; --serious:#ec835a; --critical:#d03b3b;
  --delta-good:#006300; --delta-bad:#d03b3b;
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1:#1a1a19; --page:#0d0d0d;
    --text-primary:#ffffff; --text-secondary:#c3c2b7; --muted:#898781;
    --grid:#2c2c2a; --baseline:#383835; --border: rgba(255,255,255,0.10);
    --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500;
    --s5:#d55181; --s6:#008300; --s7:#9085e9; --s8:#e66767;
    --delta-good:#0ca30c; --delta-bad:#e66767;
  }
}
main { max-width: 1280px; margin: 0 auto; padding: 20px 24px 48px; }
header.page h1 { font-size: 20px; font-weight: 650; margin: 0 0 2px; }
header.page p { margin: 0; color: var(--text-secondary); }
header.page .compare-note { color: var(--muted); font-size: 13px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 18px 0 6px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 10px 16px 12px; min-width: 132px;
}
.tile .label { font-size: 12px; color: var(--text-secondary); }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .delta { font-size: 12px; }
.tile .delta.up-good { color: var(--delta-good); }
.tile .delta.up-bad { color: var(--delta-bad); }
.tile .delta.flat { color: var(--muted); }
.marker-key { margin: 10px 0 4px; font-size: 12px; color: var(--text-secondary); }
.marker-key .swatch {
  display: inline-block; width: 3px; height: 11px; margin: 0 5px 0 12px;
  vertical-align: -1px;
}
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(480px, 1fr));
        gap: 16px; margin-top: 14px; }
figure.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; margin: 0; padding: 12px 14px 8px; position: relative;
}
figure.panel figcaption { display: flex; flex-wrap: wrap; align-items: baseline;
  gap: 10px; margin-bottom: 4px; }
figure.panel .title { font-weight: 600; font-size: 14px; }
figure.panel .unit { color: var(--muted); font-size: 12px; }
.legend { display: flex; flex-wrap: wrap; gap: 10px; font-size: 12px;
  color: var(--text-secondary); margin-left: auto; }
.legend .key { display: inline-block; width: 14px; height: 3px;
  border-radius: 2px; vertical-align: 3px; margin-right: 4px; }
.legend .key.dashed { background: repeating-linear-gradient(90deg,
  currentColor 0 4px, transparent 4px 7px); }
svg.chart { display: block; width: 100%; height: auto; }
svg.chart text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--muted); }
svg.chart .gridline { stroke: var(--grid); stroke-width: 1; }
svg.chart .axisline { stroke: var(--baseline); stroke-width: 1; }
svg.chart .series { fill: none; stroke-width: 2; stroke-linejoin: round;
  stroke-linecap: round; }
svg.chart .band { stroke: none; opacity: 0.16; }
svg.chart .series.baseline-run { stroke-dasharray: 5 4; opacity: 0.65; }
svg.chart .end-dot { stroke: var(--surface-1); stroke-width: 2; }
svg.chart .marker-rule { stroke-width: 1; opacity: 0.55; }
svg.chart .marker-rule.critical { stroke: var(--critical); }
svg.chart .marker-rule.good { stroke: var(--good); }
svg.chart .marker-rule.serious { stroke: var(--serious); }
svg.chart .marker-rule.neutral { stroke: var(--muted); }
svg.chart .crosshair { stroke: var(--muted); stroke-width: 1; opacity: 0;
  pointer-events: none; }
.tooltip {
  position: absolute; pointer-events: none; display: none; z-index: 5;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 10px rgba(0,0,0,0.18); white-space: nowrap;
}
.tooltip .t-epoch { color: var(--text-secondary); margin-bottom: 2px; }
.tooltip .t-row .key { display: inline-block; width: 10px; height: 3px;
  border-radius: 2px; vertical-align: 3px; margin-right: 5px; }
.tooltip .t-row .val { font-variant-numeric: tabular-nums; float: right;
  margin-left: 12px; }
details.table-view { margin: 4px 0 6px; font-size: 12px; }
details.table-view summary { color: var(--muted); cursor: pointer; }
details.table-view table { border-collapse: collapse; margin-top: 6px; }
details.table-view th, details.table-view td {
  padding: 2px 10px; text-align: right; font-variant-numeric: tabular-nums;
  border-bottom: 1px solid var(--grid); }
details.table-view th { color: var(--text-secondary); font-weight: 600; }
footer { margin-top: 22px; color: var(--muted); font-size: 12px; }
"""

_JS = """
document.querySelectorAll('figure.panel').forEach(function (panel) {
  var dataEl = panel.querySelector('script.panel-data');
  var svg = panel.querySelector('svg.chart');
  if (!dataEl || !svg) return;
  var d = JSON.parse(dataEl.textContent);
  var tip = document.createElement('div');
  tip.className = 'tooltip';
  panel.appendChild(tip);
  var cross = svg.querySelector('.crosshair');
  function fmt(v) {
    if (v === null || !isFinite(v)) return '–';
    if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString('en-US');
    if (Math.abs(v) >= 10) return v.toFixed(1);
    return v.toPrecision(3);
  }
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var sx = d.plotW / rect.width;
    var px = (ev.clientX - rect.left) * sx;
    var frac = (px - d.x0) / (d.x1 - d.x0);
    if (frac < -0.02 || frac > 1.02) { hide(); return; }
    var target = d.e0 + frac * (d.e1 - d.e0);
    var best = 0, bestDist = Infinity;
    for (var i = 0; i < d.epochs.length; i++) {
      var dist = Math.abs(d.epochs[i] - target);
      if (dist < bestDist) { bestDist = dist; best = i; }
    }
    var epoch = d.epochs[best];
    var cx = d.x0 + (epoch - d.e0) / Math.max(1, d.e1 - d.e0) * (d.x1 - d.x0);
    if (cross) {
      cross.setAttribute('x1', cx); cross.setAttribute('x2', cx);
      cross.style.opacity = 1;
    }
    var rows = '<div class="t-epoch">epoch ' + epoch + '</div>';
    d.series.forEach(function (s) {
      rows += '<div class="t-row"><span class="key" style="background:' +
        s.color + '"></span>' + s.name +
        '<span class="val">' + fmt(s.values[best]) + '</span></div>';
    });
    tip.innerHTML = rows;
    tip.style.display = 'block';
    var panelRect = panel.getBoundingClientRect();
    var left = ev.clientX - panelRect.left + 14;
    if (left + tip.offsetWidth > panelRect.width - 8) {
      left = ev.clientX - panelRect.left - tip.offsetWidth - 14;
    }
    tip.style.left = left + 'px';
    tip.style.top = (ev.clientY - panelRect.top - 10) + 'px';
  });
  function hide() {
    tip.style.display = 'none';
    if (cross) cross.style.opacity = 0;
  }
  svg.addEventListener('mouseleave', hide);
});
"""


# ----------------------------------------------------------------------
# Scales & formatting
# ----------------------------------------------------------------------
def _nice_ticks(lo: float, hi: float, target: int = 4) -> list[float]:
    """Round tick positions covering [lo, hi] (inclusive-ish)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if span / step <= target + 0.5:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo]


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000:
        return f"{value / 1000:,.0f}k"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:g}"
    return f"{value:.3g}"


def _fmt_value(value: float) -> str:
    if value is None or not math.isfinite(value):
        return "–"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


class _Scale:
    """Linear map from data domain to pixel range."""

    def __init__(self, d0: float, d1: float, r0: float, r1: float) -> None:
        self.d0, self.d1, self.r0, self.r1 = d0, d1, r0, r1
        self._span = (d1 - d0) or 1.0

    def __call__(self, value: float) -> float:
        return self.r0 + (value - self.d0) / self._span * (self.r1 - self.r0)


# ----------------------------------------------------------------------
# Panel construction
# ----------------------------------------------------------------------
class _PanelSeries:
    def __init__(self, name: str, values: np.ndarray, color_slot: int) -> None:
        self.name = name
        self.values = values
        self.slot = color_slot  # 1-based categorical slot

    @property
    def css_color(self) -> str:
        return f"var(--s{self.slot})"


def _path(xs: np.ndarray, ys: list[float | None]) -> str:
    """SVG path with gaps at missing points."""
    parts: list[str] = []
    pen_down = False
    for x, y in zip(xs, ys):
        if y is None:
            pen_down = False
            continue
        cmd = "L" if pen_down else "M"
        parts.append(f"{cmd}{x:.1f},{y:.1f}")
        pen_down = True
    return " ".join(parts)


def _render_panel(
    key: str,
    title: str,
    unit: str,
    epochs: np.ndarray,
    series: list[_PanelSeries],
    markers: tuple[Marker, ...],
    baseline: list[_PanelSeries] | None = None,
    band: tuple[np.ndarray, np.ndarray] | None = None,
) -> str:
    """One <figure> panel: caption+legend, SVG chart, data table.

    ``band`` is an optional ``(lo, hi)`` envelope aligned to ``epochs``
    — the fleet dashboard's min–max range over seeds — drawn as a
    translucent fill under the series lines in the first series' hue.
    """
    all_values = np.concatenate(
        [s.values for s in series]
        + [s.values for s in (baseline or [])]
        + [np.asarray(b, dtype=np.float64) for b in (band or ())]
    )
    finite = all_values[np.isfinite(all_values)]
    if len(finite) == 0:
        return ""
    lo = min(0.0, float(finite.min()))
    hi = float(finite.max())
    if hi <= lo:
        hi = lo + 1.0
    ticks = _nice_ticks(lo, hi)
    hi = max(hi, ticks[-1])
    e0, e1 = int(epochs.min(initial=0)), int(epochs.max(initial=1))
    x = _Scale(e0, e1, MARGIN_L, PLOT_W - MARGIN_R)
    y = _Scale(lo, hi, PLOT_H - MARGIN_B, MARGIN_T)

    svg: list[str] = [
        f'<svg class="chart" viewBox="0 0 {PLOT_W} {PLOT_H}" role="img" '
        f'aria-label="{html.escape(title)}">'
    ]
    # Grid + y ticks.
    for tick in ticks:
        ty = y(tick)
        svg.append(
            f'<line class="gridline" x1="{MARGIN_L}" x2="{PLOT_W - MARGIN_R}" '
            f'y1="{ty:.1f}" y2="{ty:.1f}"/>'
        )
        svg.append(
            f'<text x="{MARGIN_L - 6}" y="{ty + 3.5:.1f}" '
            f'text-anchor="end">{_fmt_tick(tick)}</text>'
        )
    # Baseline (x axis) + x ticks.
    axis_y = y(max(lo, 0.0)) if lo < 0 else y(lo)
    svg.append(
        f'<line class="axisline" x1="{MARGIN_L}" x2="{PLOT_W - MARGIN_R}" '
        f'y1="{axis_y:.1f}" y2="{axis_y:.1f}"/>'
    )
    for tick in _nice_ticks(e0, e1, target=6):
        tx = x(tick)
        svg.append(
            f'<text x="{tx:.1f}" y="{PLOT_H - 8}" '
            f'text-anchor="middle">{_fmt_tick(tick)}</text>'
        )
    # Event marker rules (under the data lines).
    for marker in markers:
        if not (e0 <= marker.epoch <= e1):
            continue
        status = MARKER_STATUS.get(marker.kind, "neutral")
        mx = x(marker.epoch)
        tip = f"{marker.kind} ×{marker.count} @ {marker.epoch}"
        if marker.label:
            tip += f" ({marker.label})"
        svg.append(
            f'<line class="marker-rule {status}" x1="{mx:.1f}" x2="{mx:.1f}" '
            f'y1="{MARGIN_T}" y2="{PLOT_H - MARGIN_B}">'
            f"<title>{html.escape(tip)}</title></line>"
        )
    # Seed envelope under everything data-colored: range first, then
    # overlays, then the mean/series lines on top.
    if band is not None:
        blo = np.asarray(band[0], dtype=np.float64)
        bhi = np.asarray(band[1], dtype=np.float64)
        mask = np.isfinite(blo) & np.isfinite(bhi)
        if mask.any():
            xs = epochs_px(epochs, x)
            idx = np.nonzero(mask)[0]
            fwd = [f"{xs[i]:.1f},{y(float(bhi[i])):.1f}" for i in idx]
            rev = [f"{xs[i]:.1f},{y(float(blo[i])):.1f}" for i in idx[::-1]]
            fill = series[0].css_color if series else "var(--s1)"
            svg.append(
                f'<polygon class="band" points="{" ".join(fwd + rev)}" '
                f'fill="{fill}"/>'
            )
    # Baseline-run overlay first so the candidate draws on top.
    for s in baseline or []:
        ys = [y(v) if math.isfinite(v) else None for v in s.values]
        svg.append(
            f'<path class="series baseline-run" d="{_path(epochs_px(epochs, x), ys)}" '
            f'stroke="{s.css_color}"/>'
        )
    for s in series:
        ys = [y(v) if math.isfinite(v) else None for v in s.values]
        svg.append(
            f'<path class="series" d="{_path(epochs_px(epochs, x), ys)}" '
            f'stroke="{s.css_color}"/>'
        )
    # End dots with a surface ring keep line ends legible.
    for s in series:
        finite_idx = np.nonzero(np.isfinite(s.values))[0]
        if len(finite_idx) == 0:
            continue
        last = int(finite_idx[-1])
        svg.append(
            f'<circle class="end-dot" cx="{x(epochs[last]):.1f}" '
            f'cy="{y(s.values[last]):.1f}" r="4" fill="{s.css_color}"/>'
        )
    svg.append(
        f'<line class="crosshair" x1="0" x2="0" '
        f'y1="{MARGIN_T}" y2="{PLOT_H - MARGIN_B}"/>'
    )
    svg.append("</svg>")

    # Legend: always for >= 2 drawn runs/series; none for a single line.
    legend: list[str] = []
    if len(series) > 1 or baseline:
        for s in series:
            legend.append(
                f'<span><span class="key" style="background:{s.css_color}"></span>'
                f"{html.escape(s.name)}</span>"
            )
        if baseline:
            legend.append(
                '<span><span class="key dashed" style="color:var(--muted)">'
                "</span>baseline</span>"
            )
    legend_html = f'<span class="legend">{"".join(legend)}</span>' if legend else ""

    # Data table (collapsed): the color-free identity channel.
    table = _data_table(epochs, series)

    # Hover data for the inline script.
    hover = {
        "plotW": PLOT_W,
        "x0": MARGIN_L,
        "x1": PLOT_W - MARGIN_R,
        "e0": e0,
        "e1": e1,
        "epochs": [int(e) for e in epochs],
        "series": [
            {
                "name": s.name,
                "color": s.css_color,
                "values": [
                    round(float(v), 6) if math.isfinite(v) else None
                    for v in s.values
                ],
            }
            for s in series
        ],
    }
    unit_html = f'<span class="unit">{html.escape(unit)}</span>' if unit else ""
    return (
        f'<figure class="panel" id="panel-{html.escape(key)}">'
        f'<figcaption><span class="title">{html.escape(title)}</span>'
        f"{unit_html}{legend_html}</figcaption>"
        f"{''.join(svg)}"
        f"{table}"
        f'<script type="application/json" class="panel-data">'
        f"{json.dumps(hover, separators=(',', ':'))}</script>"
        f"</figure>"
    )


def epochs_px(epochs: np.ndarray, x: _Scale) -> np.ndarray:
    return np.array([x(e) for e in epochs])


def _data_table(epochs: np.ndarray, series: list[_PanelSeries], max_rows: int = 40) -> str:
    step = max(1, math.ceil(len(epochs) / max_rows))
    head = "".join(f"<th>{html.escape(s.name)}</th>" for s in series)
    rows = []
    for i in range(0, len(epochs), step):
        cells = "".join(
            f"<td>{_fmt_value(float(s.values[i]))}</td>" for s in series
        )
        rows.append(f"<tr><td>{int(epochs[i])}</td>{cells}</tr>")
    note = f" (every {step} points)" if step > 1 else ""
    return (
        f'<details class="table-view"><summary>data table{note}</summary>'
        f"<table><thead><tr><th>epoch</th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


# ----------------------------------------------------------------------
# Column selection
# ----------------------------------------------------------------------
def _series_for(
    art: TsdbArtifact,
    specs: list[tuple[str, str]],
    scale: float = 1.0,
) -> list[_PanelSeries]:
    """Resolve (label, column) specs against available columns."""
    out = []
    for slot, (label, column) in enumerate(specs, start=1):
        if column in art.columns:
            out.append(_PanelSeries(label, art.column(column) * scale, slot))
    return out


def _traffic_series(art: TsdbArtifact, max_slots: int = 8) -> list[_PanelSeries]:
    """Per-DC traffic: top columns by total, tail folded into "Other"."""
    names = sorted(
        (n for n in art.columns if n.startswith("traffic_dc/")),
        key=lambda n: int(n.split("/", 1)[1]),
    )
    if not names:
        return []
    totals = {n: float(np.nansum(art.column(n))) for n in names}
    ranked = sorted(names, key=lambda n: -totals[n])
    if len(ranked) > max_slots:
        keep, rest = ranked[: max_slots - 1], ranked[max_slots - 1 :]
    else:
        keep, rest = ranked, []
    keep.sort(key=lambda n: int(n.split("/", 1)[1]))
    out = [
        _PanelSeries(f"DC {n.split('/', 1)[1]}", art.column(n), slot)
        for slot, n in enumerate(keep, start=1)
    ]
    if rest:
        other = np.sum([art.column(n) for n in rest], axis=0)
        out.append(_PanelSeries("Other", other, len(keep) + 1))
    return out


def _family_series(
    art: TsdbArtifact, prefix: str, scale: float = 1.0
) -> list[_PanelSeries]:
    """One series per ``prefix/<name>`` column, labelled by the name part."""
    names = [n for n in art.column_names() if n.startswith(prefix)]
    return [
        _PanelSeries(n.split("/", 1)[1], art.column(n) * scale, slot)
        for slot, n in enumerate(names, start=1)
    ]


def _phase_series(art: TsdbArtifact) -> list[_PanelSeries]:
    return _family_series(art, "phase_s/", scale=1e3)


def _work_series(art: TsdbArtifact) -> list[_PanelSeries]:
    """The per-epoch work-counter columns (``repro.obs.perf``)."""
    return _family_series(art, "work/")


def _decision_series(art: TsdbArtifact) -> list[_PanelSeries]:
    """Per-epoch applied-action counts keyed by decision reason
    (``decision/<reason>`` columns from the provenance-aware engine)."""
    return _family_series(art, "decision/")


# ----------------------------------------------------------------------
# Stat tiles
# ----------------------------------------------------------------------
def _tail_mean(values: np.ndarray) -> float:
    if len(values) == 0:
        return math.nan
    tail = values[-max(1, len(values) // 4) :]
    finite = tail[np.isfinite(tail)]
    return float(finite.mean()) if len(finite) else math.nan


def _tile(
    label: str,
    value: str,
    delta: float | None = None,
    up_is_good: bool | None = None,
) -> str:
    delta_html = ""
    if delta is not None and math.isfinite(delta):
        if abs(delta) < 1e-12:
            cls, text = "flat", "= baseline"
        else:
            arrow = "▲" if delta > 0 else "▼"
            good = (delta > 0) == up_is_good if up_is_good is not None else None
            cls = "flat" if good is None else ("up-good" if good else "up-bad")
            text = f"{arrow} {abs(delta):.3g} vs baseline"
        delta_html = f'<div class="delta {cls}">{text}</div>'
    return (
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{value}</div>{delta_html}</div>'
    )


def _tiles(run: TsdbArtifact, baseline: TsdbArtifact | None) -> str:
    def col(art: TsdbArtifact, name: str) -> np.ndarray | None:
        return art.columns.get(name)

    tiles: list[str] = []

    def add(name, label, fmt, reducer, up_is_good):
        values = col(run, name)
        if values is None or len(values) == 0:
            return
        current = reducer(values)
        delta = None
        if baseline is not None and col(baseline, name) is not None:
            base = reducer(col(baseline, name))
            if math.isfinite(base) and math.isfinite(current):
                delta = current - base
        tiles.append(_tile(label, fmt(current), delta, up_is_good))

    add("utilization", "Utilization (steady)", lambda v: f"{v:.1%}", _tail_mean, True)
    add(
        "sla_attainment", "SLA attainment", lambda v: f"{v:.2%}", _tail_mean, True
    )
    add(
        "total_replicas",
        "Replicas (final)",
        lambda v: f"{v:,.0f}",
        lambda a: float(a[np.isfinite(a)][-1]) if np.isfinite(a).any() else math.nan,
        False,
    )
    add(
        "unserved",
        "Unserved (total)",
        lambda v: f"{v:,.0f}",
        lambda a: float(np.nansum(a)) * run.effective_stride,
        False,
    )
    epochs_covered = (
        int(run.epochs.max(initial=0)) + 1 if run.num_points else 0
    )
    tiles.append(
        _tile(
            "Epochs",
            f"{epochs_covered:,}",
        )
    )
    if run.markers:
        tiles.append(
            _tile("Events marked", f"{sum(m.count for m in run.markers):,}")
        )
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _marker_key(markers: tuple[Marker, ...]) -> str:
    if not markers:
        return ""
    kinds: dict[str, int] = {}
    for marker in markers:
        kinds[marker.kind] = kinds.get(marker.kind, 0) + marker.count
    parts = ['<div class="marker-key">event markers:']
    for kind in sorted(kinds):
        status = MARKER_STATUS.get(kind, "neutral")
        parts.append(
            f'<span class="swatch" style="background:var(--{status})"></span>'
            f"{html.escape(kind)} ×{kinds[kind]}"
        )
    parts.append("</div>")
    return "".join(parts)


# ----------------------------------------------------------------------
# The page
# ----------------------------------------------------------------------
def render_dashboard(
    run: TsdbArtifact,
    baseline: TsdbArtifact | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render one self-contained HTML page over a recorded run."""
    meta = run.meta
    if title is None:
        bits = [str(meta.get("policy", "run"))]
        if meta.get("scenario"):
            bits.append(str(meta["scenario"]))
        title = "RFH run dashboard — " + " / ".join(bits)

    meta_bits = [
        f"{key}={meta[key]}"
        for key in ("policy", "scenario", "seed", "epochs", "chaos")
        if meta.get(key) is not None
    ]
    meta_bits.append(f"{run.num_points} points")
    if run.effective_stride > 1:
        meta_bits.append(f"1 point ≈ {run.effective_stride} epochs")
    subtitle = " · ".join(meta_bits)

    compare_note = ""
    if baseline is not None:
        base_bits = [
            f"{key}={baseline.meta[key]}"
            for key in ("policy", "scenario", "seed", "epochs", "chaos")
            if baseline.meta.get(key) is not None
        ]
        compare_note = (
            f'<p class="compare-note">baseline overlay (dashed): '
            f"{html.escape(' · '.join(base_bits) or 'unnamed run')}</p>"
        )

    epochs = run.epochs
    markers = run.markers
    panels: list[str] = []

    def panel(key, title_, unit, specs, *, scale=1.0, overlay=True):
        series = _series_for(run, specs, scale)
        if not series:
            return
        base_series = None
        # Overlay the baseline only where it stays readable: panels
        # drawing at most two candidate series.
        if baseline is not None and overlay and len(series) <= 2:
            base_series = [
                _PanelSeries(s.name, baseline.column(c) * scale, s.slot)
                for s, (_, c) in zip(series, specs)
                if c in baseline.columns
            ] or None
        # Align baseline overlay lengths by truncation to the run grid.
        if base_series:
            n = len(epochs)
            base_series = [
                _PanelSeries(s.name, s.values[:n], s.slot) for s in base_series
            ]
            if any(len(s.values) != n for s in base_series):
                base_series = None
        panels.append(
            _render_panel(key, title_, unit, epochs, series, markers, base_series)
        )

    panel("utilization", "DC utilization", "fraction", [("utilization", "utilization")])
    panel(
        "replicas",
        "Replica count",
        "copies",
        [("total", "total_replicas")],
    )
    traffic = _traffic_series(run)
    if traffic:
        panels.append(
            _render_panel(
                "traffic", "Traffic per datacenter", "queries/epoch",
                epochs, traffic, markers,
            )
        )
    panel(
        "sla",
        "SLA attainment",
        "fraction in bound",
        [("attainment", "sla_attainment")],
    )
    panel("unserved", "Unserved queries", "queries/epoch", [("unserved", "unserved")])
    panel(
        "costs",
        "Action costs",
        "cost/epoch (Eq. 1)",
        [("replication", "replication_cost"), ("migration", "migration_cost")],
    )
    panel("path", "Mean path length", "WAN hops", [("path length", "path_length")])
    panel(
        "latency", "Mean latency", "ms", [("latency", "mean_latency_ms")]
    )
    panel(
        "alive",
        "Alive servers",
        "servers",
        [("alive", "alive_servers")],
    )
    phases = _phase_series(run)
    if phases:
        panels.append(
            _render_panel(
                "phases", "Engine phase timings", "ms/epoch",
                epochs, phases, markers,
            )
        )
    work = _work_series(run)
    if work:
        # Work counters are deterministic, so a dashed baseline overlay
        # stays readable even with many series: divergence from the
        # baseline is an algorithmic change, not noise.
        base_work = None
        if baseline is not None:
            slots = {s.name: s.slot for s in work}
            n = len(epochs)
            base_work = [
                _PanelSeries(name, baseline.column(f"work/{name}")[:n], slot)
                for name, slot in slots.items()
                if f"work/{name}" in baseline.columns
            ] or None
            if base_work and any(len(s.values) != n for s in base_work):
                base_work = None
        panels.append(
            _render_panel(
                "work", "Work per epoch", "units/epoch",
                epochs, work, markers, base_work,
            )
        )
    decisions = _decision_series(run)
    if decisions:
        # Same dashed-overlay treatment as the work panel: the decision
        # mix is deterministic, so baseline divergence means the policy
        # chose differently, not that the workload wiggled.
        base_decisions = None
        if baseline is not None:
            slots = {s.name: s.slot for s in decisions}
            n = len(epochs)
            base_decisions = [
                _PanelSeries(name, baseline.column(f"decision/{name}")[:n], slot)
                for name, slot in slots.items()
                if f"decision/{name}" in baseline.columns
            ] or None
            if base_decisions and any(len(s.values) != n for s in base_decisions):
                base_decisions = None
        panels.append(
            _render_panel(
                "decisions", "Decisions per epoch by reason", "actions/epoch",
                epochs, decisions, markers, base_decisions,
            )
        )

    generated = meta.get("generated", "")
    footer_bits = ["rendered by repro dashboard", "offline: no external resources"]
    if generated:
        footer_bits.insert(1, html.escape(str(generated)))

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        '<header class="page">\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f"<p>{html.escape(subtitle)}</p>\n{compare_note}\n"
        "</header>\n"
        f"{_tiles(run, baseline)}\n"
        f"{_marker_key(markers)}\n"
        f'<div class="grid">\n{"".join(panels)}\n</div>\n'
        f"<footer>{' · '.join(footer_bits)}</footer>\n"
        "</main>\n"
        f"<script>{_JS}</script>\n"
        "</body>\n</html>\n"
    )
