"""Phase profiling: where does an epoch's wall-time go?

``Simulation.step`` has six phases (DESIGN.md Section 3): apply
membership events, generate the workload, serve it, observe/decide,
apply the actions, record metrics.  A benchmark that only times whole
runs can say *that* a change regressed but not *where*; this profiler
attributes every epoch's wall-clock to a phase so ``benchmarks/``
regressions point at the responsible loop.

Usage::

    profiler = PhaseProfiler()
    sim = Simulation(config, profiler=profiler)
    sim.run(200)
    print(profiler.render_table())

:class:`NullProfiler` (the engine default) hands out a shared no-op
context manager, so the un-profiled hot path pays six empty ``with``
blocks per epoch — nanoseconds against a multi-millisecond serve phase.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["ENGINE_PHASES", "PhaseStats", "PhaseProfiler", "NullProfiler"]

#: The engine's phases, in execution order.  Test-asserted stable: the
#: benchmark tooling keys its regression attribution on these names.
ENGINE_PHASES: tuple[str, ...] = (
    "membership",
    "workload",
    "serve",
    "observe",
    "apply",
    "record",
)


@dataclass(frozen=True)
class PhaseStats:
    """Summary of one phase's per-epoch wall-clock samples (seconds)."""

    phase: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float

    def to_dict(self) -> dict[str, float | int | str]:
        return {
            "phase": self.phase,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }


def _percentile(ordered: list[float], q: float) -> float:
    """Linearly-interpolated percentile of an already-sorted sample.

    Interpolation, not nearest-rank: ``round`` banker-rounds the
    two-sample median's rank ``0.5`` down to 0, reporting the *minimum*
    as p50 — exactly the sample size a 2-epoch smoke run produces.
    """
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    lower = min(len(ordered) - 1, max(0, int(position)))
    upper = min(len(ordered) - 1, lower + 1)
    fraction = position - lower
    if fraction <= 0.0 or lower == upper:
        return ordered[lower]
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


class _PhaseTimer:
    """Reusable context manager timing one phase entry."""

    __slots__ = ("_profiler", "_phase", "_t0")

    def __init__(self, profiler: PhaseProfiler, phase: str) -> None:
        self._profiler = profiler
        self._phase = phase

    def __enter__(self) -> _PhaseTimer:
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._profiler._samples[self._phase].append(time.perf_counter() - self._t0)


class _NullTimer:
    """No-op context manager shared by every :class:`NullProfiler`."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class PhaseProfiler:
    """Collect per-epoch wall-clock samples for each engine phase."""

    enabled: bool = True

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {name: [] for name in ENGINE_PHASES}
        self._timers: dict[str, _PhaseTimer] = {
            name: _PhaseTimer(self, name) for name in ENGINE_PHASES
        }

    def phase(self, name: str):
        """Context manager timing one entry of ``name``."""
        timer = self._timers.get(name)
        if timer is None:  # a caller-defined phase outside the engine's six
            self._samples[name] = self._samples.get(name, [])
            timer = self._timers[name] = _PhaseTimer(self, name)
        return timer

    def span(self, name: str) -> _NullTimer:
        """Nested kernel spans are a no-op here; the perf subsystem's
        :class:`~repro.obs.perf.HotPathProfiler` overrides this, so
        span sites can call it on any attached profiler."""
        return _NULL_TIMER

    # ------------------------------------------------------------------
    def epochs_profiled(self) -> int:
        """Number of samples of the first engine phase (== epochs run)."""
        return len(self._samples[ENGINE_PHASES[0]])

    def latest(self) -> dict[str, float]:
        """The most recent sample of every phase that has one.

        Sampled by the time-series recorder at the end of each epoch;
        note the ``record`` phase is still open at that point, so its
        entry lags one epoch behind the other five.
        """
        return {
            name: samples[-1]
            for name, samples in self._samples.items()
            if samples
        }

    def phase_timings(self) -> dict[str, PhaseStats]:
        """Per-phase summaries, engine phases first, in stable order."""
        out: dict[str, PhaseStats] = {}
        for name, samples in self._samples.items():
            ordered = sorted(samples)
            total = sum(samples)
            out[name] = PhaseStats(
                phase=name,
                count=len(samples),
                total=total,
                mean=total / len(samples) if samples else 0.0,
                p50=_percentile(ordered, 0.50),
                p95=_percentile(ordered, 0.95),
            )
        return out

    def call_counts(self) -> dict[str, int]:
        """Entries recorded per phase (how often each phase ran)."""
        return {name: len(samples) for name, samples in self._samples.items()}

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's samples into this one.

        Aggregates timing across runs (e.g. the four policies of a
        ``compare``, or repeated benchmark rounds) without losing the
        per-sample distribution the percentiles are computed from.
        """
        for name, samples in other._samples.items():
            if name not in self._samples:
                self.phase(name)  # registers the phase with this class's timer
            self._samples[name].extend(samples)

    def reset(self) -> None:
        for samples in self._samples.values():
            samples.clear()

    def render_table(self) -> str:
        """Fixed-width per-phase table (milliseconds), for the CLI."""
        timings = self.phase_timings()
        grand_total = sum(stats.total for stats in timings.values()) or 1.0
        lines = [
            f"{'phase':>12} {'epochs':>7} {'total ms':>10} "
            f"{'mean ms':>9} {'p50 ms':>9} {'p95 ms':>9} {'share':>7}"
        ]
        for name, stats in timings.items():
            lines.append(
                f"{name:>12} {stats.count:>7d} {stats.total * 1e3:>10.2f} "
                f"{stats.mean * 1e3:>9.3f} {stats.p50 * 1e3:>9.3f} "
                f"{stats.p95 * 1e3:>9.3f} {stats.total / grand_total:>6.1%}"
            )
        return "\n".join(lines)


class NullProfiler:
    """Profiling off: every phase shares one stateless no-op timer."""

    enabled: bool = False

    def phase(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def span(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def epochs_profiled(self) -> int:
        return 0

    def call_counts(self) -> dict[str, int]:
        return {}

    def latest(self) -> dict[str, float]:
        return {}

    def phase_timings(self) -> dict[str, PhaseStats]:
        return {}

    def reset(self) -> None:
        pass
