"""Live terminal progress over a fleet event stream.

:class:`FleetProgress` folds the events of :mod:`repro.obs.fleet.events`
into a running tally and renders it two ways, chosen by whether the
output stream is a TTY:

* **TTY** — one self-rewriting status line
  (``[12/40] ok=11 failed=1 run=3 | rfh-flash-s3 ... eta ~41s``)
  updated on every event, so a human watches the sweep breathe;
* **pipe/CI** — one plain line per completion or failure, so logs stay
  grep-able and nothing depends on carriage returns.

The renderer never raises: progress is a convenience surface and a
broken terminal must not kill a half-finished sweep.
"""

from __future__ import annotations

import sys
from typing import IO

from .events import (
    CELL_FAILED,
    CELL_FINISHED,
    CELL_STARTED,
    HEARTBEAT,
    WORKER_EXITED,
    wall_clock_now,
)

__all__ = ["FleetProgress"]


class FleetProgress:
    """Fold fleet events into counters and render live status lines."""

    def __init__(
        self,
        total_cells: int,
        *,
        stream: IO[str] | None = None,
        live: bool | None = None,
    ) -> None:
        self.total = int(total_cells)
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.ok = 0
        self.failed = 0
        self.resumed = 0
        #: worker id -> (cell_id, started_at seconds)
        self.running: dict[int, tuple[str, float]] = {}
        self.durations: list[float] = []
        self._started_at = wall_clock_now()
        self._line_len = 0

    # ------------------------------------------------------------------
    @property
    def accounted(self) -> int:
        return self.ok + self.failed + self.resumed

    def note_resumed(self, cell_id: str) -> None:
        self.resumed += 1
        self._emit(f"[{self.accounted}/{self.total}] resumed {cell_id}")

    def handle(self, event: dict) -> None:
        """Consume one fleet event and update the display."""
        kind = event.get("kind")
        worker = int(event.get("worker", -1))
        if kind == CELL_STARTED:
            self.running[worker] = (str(event.get("cell_id")), wall_clock_now())
            self._refresh()
        elif kind == CELL_FINISHED:
            started = self.running.pop(worker, (None, None))[1]
            duration = event.get("record", {}).get("duration_s")
            if duration is None and started is not None:
                duration = wall_clock_now() - started
            if duration is not None:
                self.durations.append(float(duration))
            self.ok += 1
            self._emit(
                f"[{self.accounted}/{self.total}] ok {event.get('cell_id')}"
                + (f" {float(duration):.1f}s" if duration is not None else "")
                + f" (worker {worker})"
            )
        elif kind == CELL_FAILED:
            self.running.pop(worker, None)
            self.failed += 1
            failure = event.get("failure", {})
            self._emit(
                f"[{self.accounted}/{self.total}] FAILED {event.get('cell_id')}"
                f" [{failure.get('kind', 'error')}] {failure.get('error', '')}"
                f" (worker {worker})"
            )
        elif kind == HEARTBEAT:
            self._refresh()
        elif kind == WORKER_EXITED:
            self.running.pop(worker, None)
            self._refresh()

    # ------------------------------------------------------------------
    def status_line(self) -> str:
        """The current one-line fleet summary."""
        bits = [
            f"[{self.accounted}/{self.total}]",
            f"ok={self.ok}",
            f"failed={self.failed}",
        ]
        if self.resumed:
            bits.append(f"resumed={self.resumed}")
        if self.running:
            cells = ", ".join(cell for cell, _ in self.running.values())
            if len(cells) > 48:
                cells = cells[:45] + "..."
            bits.append(f"run={len(self.running)} | {cells}")
        eta = self.eta_seconds()
        if eta is not None:
            bits.append(f"eta ~{eta:.0f}s")
        return " ".join(bits)

    def eta_seconds(self) -> float | None:
        """Remaining-work estimate from observed cell durations."""
        remaining = self.total - self.accounted
        if remaining <= 0 or not self.durations:
            return None
        mean = sum(self.durations) / len(self.durations)
        lanes = max(1, len(self.running))
        return remaining * mean / lanes

    def summary(self, wall_s: float | None = None) -> str:
        if wall_s is None:
            wall_s = wall_clock_now() - self._started_at
        bits = [
            f"sweep: {self.ok} ok",
            f"{self.failed} failed",
        ]
        if self.resumed:
            bits.append(f"{self.resumed} resumed")
        return ", ".join(bits) + f" of {self.total} cell(s) in {wall_s:.1f}s"

    def finish(self, wall_s: float | None = None) -> None:
        self._clear_line()
        self._println(self.summary(wall_s))

    # ------------------------------------------------------------------
    # Stream plumbing (never raises)
    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        """A durable line: printed in pipe mode, folded into the live
        line on a TTY."""
        if self.live:
            self._clear_line()
            self._println(line)
            self._refresh()
        else:
            self._println(line)

    def _refresh(self) -> None:
        if not self.live:
            return
        line = self.status_line()
        pad = max(0, self._line_len - len(line))
        self._write("\r" + line + " " * pad)
        self._line_len = len(line)

    def _clear_line(self) -> None:
        if self.live and self._line_len:
            self._write("\r" + " " * self._line_len + "\r")
            self._line_len = 0

    def _println(self, line: str) -> None:
        self._write(line + "\n")

    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: drop output
            pass
