"""The aggregate multi-run dashboard: band plots over seeds.

``repro sweep --dashboard`` renders one self-contained HTML page over a
merged sweep: for each ``(policy, scenario, scale, engine)`` group and
each headline metric, the per-seed trajectories are folded into a
min–max envelope (a translucent band) with the cross-seed mean drawn on
top — the multi-seed counterpart of the single-run dashboard, built
from the same panel machinery, CSS and hover script of
:mod:`repro.obs.timeseries.dashboard` so the two surfaces stay visually
identical.
"""

from __future__ import annotations

import html
import pathlib

import numpy as np

from ...errors import SweepError
from ...obs.timeseries.artifact import TsdbArtifact, TsdbError
from ...obs.timeseries.dashboard import _CSS, _JS, _PanelSeries, _render_panel

__all__ = ["FLEET_PANELS", "render_fleet_dashboard"]

#: ``(column, panel title, unit)`` drawn per group when present.
FLEET_PANELS = (
    ("utilization", "DC utilization", "fraction"),
    ("total_replicas", "Replica count", "copies"),
    ("sla_attainment", "SLA attainment", "fraction in bound"),
    ("unserved", "Unserved queries", "queries/epoch"),
    ("path_length", "Mean path length", "WAN hops"),
    ("replication_cost", "Replication cost", "cost/epoch (Eq. 1)"),
)


def _group_runs(artifact, sweep_dir: pathlib.Path) -> dict[str, list[TsdbArtifact]]:
    """``group_key -> per-seed tsdb artifacts`` for completed cells.

    Cells whose time-series file is missing or unreadable are skipped
    (the sweep artifact still carries their summaries); a group with no
    loadable runs simply draws no panels.
    """
    runs: dict[str, list[TsdbArtifact]] = {}
    for record in artifact.cells:
        if record.get("status") != "ok":
            continue
        rel = record.get("artifacts", {}).get("timeseries")
        if not rel:
            continue
        cell_dir = f"{record['cell_id']}-{record['digest']}"
        path = sweep_dir / "cells" / cell_dir / rel
        try:
            run = TsdbArtifact.load(path)
        except (TsdbError, OSError):
            continue
        runs.setdefault(str(record["group"]), []).append(run)
    return runs


def _band_panel(
    group: str, column: str, title: str, unit: str, runs: list[TsdbArtifact],
    slot: int,
) -> str:
    """One band panel: min–max envelope over seeds + mean line."""
    with_column = [run for run in runs if column in run.columns]
    if not with_column:
        return ""
    n = min(run.num_points for run in with_column)
    if n == 0:
        return ""
    stacked = np.vstack([run.column(column)[:n] for run in with_column])
    epochs = with_column[0].epochs[:n]
    mean = _PanelSeries(f"mean over {len(with_column)} seed(s)", stacked.mean(axis=0), slot)
    band = (stacked.min(axis=0), stacked.max(axis=0))
    key = f"{group}-{column}".replace("/", "-")
    return _render_panel(
        key,
        f"{title} — {group}",
        unit,
        epochs,
        [mean],
        with_column[0].markers,
        band=band,
    )


def render_fleet_dashboard(
    artifact,
    sweep_dir: str | pathlib.Path,
    *,
    title: str | None = None,
) -> str:
    """Render the sweep's aggregate dashboard as one offline HTML page.

    ``artifact`` is a merged :class:`~repro.sweep.artifact.SweepArtifact`;
    ``sweep_dir`` is its sweep directory (the per-cell ``.tsdb.json``
    files are read from ``cells/``).
    """
    sweep_dir = pathlib.Path(sweep_dir)
    manifest = artifact.manifest
    if title is None:
        title = f"RFH sweep dashboard — {manifest.name}"

    runs = _group_runs(artifact, sweep_dir)
    if not runs:
        raise SweepError(
            f"no loadable cell time series under {sweep_dir / 'cells'}; "
            "was the sweep run with its artifacts intact?"
        )

    panels: list[str] = []
    group_order = [g for g in artifact.group_keys() if g in runs]
    for index, group in enumerate(group_order):
        slot = index % 8 + 1
        for column, panel_title, unit in FLEET_PANELS:
            rendered = _band_panel(
                group, column, panel_title, unit, runs[group], slot
            )
            if rendered:
                panels.append(rendered)

    subtitle = (
        f"manifest {manifest.manifest_hash} · "
        f"{manifest.num_cells} cell(s): {artifact.num_ok} ok, "
        f"{artifact.num_failed} failed · seeds {list(manifest.seeds)} · "
        f"epochs {manifest.epochs}"
    )
    tiles = "".join(
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(str(value))}</div></div>'
        for label, value in (
            ("groups", len(group_order)),
            ("cells ok", artifact.num_ok),
            ("cells failed", artifact.num_failed),
            ("seeds", len(manifest.seeds)),
            ("epochs", manifest.epochs),
        )
    )
    footer = (
        "rendered by repro sweep --dashboard · band = min–max over seeds, "
        "line = cross-seed mean · offline: no external resources"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        '<header class="page">\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f"<p>{html.escape(subtitle)}</p>\n"
        "</header>\n"
        f'<div class="tiles">{tiles}</div>\n'
        f'<div class="grid">\n{"".join(panels)}\n</div>\n'
        f"<footer>{footer}</footer>\n"
        "</main>\n"
        f"<script>{_JS}</script>\n"
        "</body>\n</html>\n"
    )
