"""Fleet-level observability: watching many runs run.

``repro.obs`` so far observes *one* simulation at a time (traces,
profiles, time series, provenance).  This subpackage observes a
*fleet* — the worker processes of a ``repro sweep`` — through a small
event vocabulary streamed over a queue:

* :mod:`events` — the typed event records workers emit (cell started /
  finished / failed, heartbeats, worker lifecycle) and the single
  wall-clock helper the fleet layer is allowed to use;
* :mod:`progress` — a terminal renderer folding those events into live
  status lines (TTY: one self-rewriting line; pipe: one line per
  completion) plus a final summary;
* :mod:`dashboard` — the aggregate multi-run dashboard: per-group band
  plots (min–max envelope + mean line over seeds) reusing the
  single-run panel machinery of :mod:`repro.obs.timeseries.dashboard`.
"""

from .events import (
    CELL_FAILED,
    CELL_FINISHED,
    CELL_STARTED,
    HEARTBEAT,
    WORKER_EXITED,
    WORKER_STARTED,
    cell_failed,
    cell_finished,
    cell_started,
    heartbeat,
    wall_clock_now,
    worker_exited,
    worker_started,
)
from .progress import FleetProgress

__all__ = [
    "CELL_FAILED",
    "CELL_FINISHED",
    "CELL_STARTED",
    "HEARTBEAT",
    "WORKER_EXITED",
    "WORKER_STARTED",
    "FleetProgress",
    "cell_failed",
    "cell_finished",
    "cell_started",
    "heartbeat",
    "wall_clock_now",
    "worker_exited",
    "worker_started",
]
