"""The fleet event vocabulary: what sweep workers tell the orchestrator.

Events cross a :mod:`multiprocessing` queue, so they are plain dicts —
picklable, ``jq``-able when journaled — built by the constructor
functions here so every producer agrees on the schema.  Each event
carries its ``kind`` (one of the module constants), the emitting
worker id, and kind-specific payload fields.

This module also owns :func:`wall_clock_now`, the *single* wall-clock
read the fleet layer uses for elapsed-time accounting.  Fleet timing is
observability of the orchestration itself — worker liveness, cell
durations, ETA — and never feeds simulation state, which is why the
read is confined here and marked for the determinism linter.
"""

from __future__ import annotations

import time

__all__ = [
    "CELL_FAILED",
    "CELL_FINISHED",
    "CELL_STARTED",
    "HEARTBEAT",
    "KINDS",
    "WORKER_EXITED",
    "WORKER_STARTED",
    "cell_failed",
    "cell_finished",
    "cell_started",
    "heartbeat",
    "wall_clock_now",
    "worker_exited",
    "worker_started",
]

CELL_STARTED = "cell_started"
CELL_FINISHED = "cell_finished"
CELL_FAILED = "cell_failed"
HEARTBEAT = "heartbeat"
WORKER_STARTED = "worker_started"
WORKER_EXITED = "worker_exited"

#: Every event kind a well-formed fleet stream may carry.
KINDS: tuple[str, ...] = (
    CELL_STARTED,
    CELL_FINISHED,
    CELL_FAILED,
    HEARTBEAT,
    WORKER_STARTED,
    WORKER_EXITED,
)


def wall_clock_now() -> float:
    """Monotonic seconds for fleet elapsed-time accounting only.

    Confined here so the rest of the sweep/fleet code never reads a
    clock directly; orchestration timing is observability, not
    simulation state, and must never influence any simulated value.
    """
    return time.monotonic()  # repro: noqa[REP002] - fleet wall-clock, never simulation state


def _base(kind: str, worker: int) -> dict[str, object]:
    return {"kind": kind, "worker": int(worker)}


def worker_started(worker: int) -> dict[str, object]:
    return _base(WORKER_STARTED, worker)


def worker_exited(worker: int, cells_run: int) -> dict[str, object]:
    event = _base(WORKER_EXITED, worker)
    event["cells_run"] = int(cells_run)
    return event


def cell_started(worker: int, index: int, cell_id: str) -> dict[str, object]:
    event = _base(CELL_STARTED, worker)
    event.update(index=int(index), cell_id=cell_id)
    return event


def cell_finished(
    worker: int, index: int, cell_id: str, record: dict
) -> dict[str, object]:
    event = _base(CELL_FINISHED, worker)
    event.update(index=int(index), cell_id=cell_id, record=record)
    return event


def cell_failed(
    worker: int, index: int, cell_id: str, failure: dict
) -> dict[str, object]:
    """A structured cell failure: the worker survived, the traceback is
    data.  ``failure`` must carry ``kind`` (e.g. ``worker-error``,
    ``determinism-divergence``, ``worker-crash``) and ``error``."""
    event = _base(CELL_FAILED, worker)
    event.update(index=int(index), cell_id=cell_id, failure=failure)
    return event


def heartbeat(
    worker: int, cell_id: str | None, elapsed_s: float, cells_run: int
) -> dict[str, object]:
    event = _base(HEARTBEAT, worker)
    event.update(
        cell_id=cell_id, elapsed_s=float(elapsed_s), cells_run=int(cells_run)
    )
    return event
