"""Derived artifact-path helpers shared by the CLI subcommands.

Every observability surface writes sibling files next to a user-given
output path (``out.tsdb.json`` → ``out.rfh.tsdb.json`` per policy,
``out.prof.json`` → ``out.speedscope.json``, ...).  The suffix logic
lives here once: compound artifact suffixes are recognized as a unit so
a tag or replacement never lands *inside* ``.tsdb.json``.
"""

from __future__ import annotations

import pathlib

__all__ = ["ARTIFACT_SUFFIXES", "split_suffix", "tagged_path", "derived_path"]

#: Compound suffixes recognized as a unit, most specific first.
ARTIFACT_SUFFIXES: tuple[str, ...] = (
    ".prov.json",
    ".tsdb.json",
    ".prof.json",
    ".fp.json",
    ".speedscope.json",
    ".jsonl",
    ".json",
)


def split_suffix(path: str | pathlib.Path) -> tuple[str, str]:
    """Split ``path`` into (stem, artifact suffix).

    The suffix is the longest matching entry of
    :data:`ARTIFACT_SUFFIXES` (empty when none matches); the stem keeps
    any directory part.  A bare suffix-named file like ``.json`` is
    left whole rather than split to an empty stem.
    """
    text = str(path)
    name = pathlib.PurePath(text).name
    for suffix in ARTIFACT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return text[: -len(suffix)], suffix
    return text, ""


def tagged_path(path: str | pathlib.Path, tag: str) -> str:
    """Insert ``.tag`` before the artifact suffix.

    ``out.tsdb.json`` + ``rfh`` → ``out.rfh.tsdb.json``; a path with no
    recognized suffix gets ``.tag`` appended.
    """
    stem, suffix = split_suffix(path)
    return f"{stem}.{tag}{suffix}"


def derived_path(path: str | pathlib.Path, suffix: str) -> str:
    """Replace the artifact suffix with another (e.g. ``.speedscope.json``)."""
    stem, _ = split_suffix(path)
    return f"{stem}{suffix}"
