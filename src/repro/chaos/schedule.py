"""Typed chaos injections and the schedule that bundles them.

An injection describes *what kind* of fault happens and *when*; it never
names concrete victims (beyond optional explicit domain keys).  Victims
are drawn from the simulation's seeded ``"chaos"`` RNG stream when the
schedule is compiled against a concrete cluster
(:class:`~repro.chaos.controller.ChaosController`), so a schedule is a
declarative, reusable value and a (config, schedule) pair is fully
deterministic.

Four injection families:

* :class:`CorrelatedFailure` — one or more whole fault domains (rack,
  room, datacenter — or plain servers) fail at once, optionally
  recovering after a fixed downtime;
* :class:`RollingOutage` — domains fail one after another with a fixed
  stride (a staggered maintenance wave gone wrong), each recovering
  after its own downtime;
* :class:`Flapping` — servers cycle down/up repeatedly with seeded
  per-server phase offsets (the churn regime of the mean-field
  replication analyses);
* :class:`WanPartition` — a set of datacenters is cut off from the rest
  of the WAN graph for a fixed duration (link failures, not server
  failures: data survives, reachability does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .domains import FAULT_SCOPES

__all__ = [
    "CorrelatedFailure",
    "RollingOutage",
    "Flapping",
    "WanPartition",
    "ChaosInjection",
    "ChaosSchedule",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _check_scope(scope: str) -> None:
    _require(
        scope in FAULT_SCOPES,
        f"scope must be one of {FAULT_SCOPES}, got {scope!r}",
    )


@dataclass(frozen=True)
class CorrelatedFailure:
    """``domains`` whole fault domains of ``scope`` fail at ``epoch``.

    ``domain_keys`` pins explicit domains (e.g. ``("dc:7",)``); when
    empty, distinct domains are drawn from the chaos stream at compile
    time.  ``downtime=None`` means the outage is permanent.
    """

    epoch: int
    scope: str = "rack"
    domains: int = 1
    downtime: int | None = None
    domain_keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require(self.epoch >= 0, f"epoch must be >= 0, got {self.epoch}")
        _check_scope(self.scope)
        _require(self.domains >= 1, f"domains must be >= 1, got {self.domains}")
        if self.downtime is not None:
            _require(self.downtime >= 1, f"downtime must be >= 1, got {self.downtime}")
        if self.domain_keys:
            _require(
                len(self.domain_keys) == self.domains,
                f"{self.domains} domains requested but "
                f"{len(self.domain_keys)} explicit keys given",
            )


@dataclass(frozen=True)
class RollingOutage:
    """``domains`` distinct domains fail one by one, ``stride`` epochs
    apart, each recovering ``downtime`` epochs after it went down."""

    start_epoch: int
    scope: str = "datacenter"
    domains: int = 3
    stride: int = 10
    downtime: int = 10

    def __post_init__(self) -> None:
        _require(self.start_epoch >= 0, f"start_epoch must be >= 0, got {self.start_epoch}")
        _check_scope(self.scope)
        _require(self.domains >= 1, f"domains must be >= 1, got {self.domains}")
        _require(self.stride >= 1, f"stride must be >= 1, got {self.stride}")
        _require(self.downtime >= 1, f"downtime must be >= 1, got {self.downtime}")


@dataclass(frozen=True)
class Flapping:
    """``count`` servers cycle up/down: each flapper gets a seeded phase
    offset, then repeats ``cycles`` times: down for ``down_epochs``, up
    for ``up_epochs``."""

    start_epoch: int
    count: int = 3
    up_epochs: int = 4
    down_epochs: int = 2
    cycles: int = 3

    def __post_init__(self) -> None:
        _require(self.start_epoch >= 0, f"start_epoch must be >= 0, got {self.start_epoch}")
        _require(self.count >= 1, f"count must be >= 1, got {self.count}")
        _require(self.up_epochs >= 1, f"up_epochs must be >= 1, got {self.up_epochs}")
        _require(self.down_epochs >= 1, f"down_epochs must be >= 1, got {self.down_epochs}")
        _require(self.cycles >= 1, f"cycles must be >= 1, got {self.cycles}")

    @property
    def period(self) -> int:
        """Epochs of one full down+up cycle."""
        return self.down_epochs + self.up_epochs


@dataclass(frozen=True)
class WanPartition:
    """Cut every WAN link between ``isolate`` and the rest for
    ``duration`` epochs.

    ``isolate`` holds datacenter letter names (``("H", "I", "J")``);
    ``None`` draws one continent's sites from the chaos stream at
    compile time.  Servers stay up — only reachability is lost, so
    queries whose route crosses the cut go unserved and replication
    across it is refused.
    """

    epoch: int
    duration: int
    isolate: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _require(self.epoch >= 0, f"epoch must be >= 0, got {self.epoch}")
        _require(self.duration >= 1, f"duration must be >= 1, got {self.duration}")
        if self.isolate is not None:
            _require(len(self.isolate) >= 1, "isolate must name at least one site")


ChaosInjection = CorrelatedFailure | RollingOutage | Flapping | WanPartition


@dataclass(frozen=True)
class ChaosSchedule:
    """A named, ordered bundle of chaos injections.

    Order matters: compile-time RNG draws are consumed in injection
    order, so the same (seed, schedule) pair always yields the same
    victims.
    """

    name: str
    injections: tuple[ChaosInjection, ...] = field(default=())

    def __post_init__(self) -> None:
        _require(bool(self.name), "a chaos schedule needs a non-empty name")
        for injection in self.injections:
            _require(
                isinstance(injection, ChaosInjection),
                f"not a chaos injection: {injection!r}",
            )

    def __len__(self) -> int:
        return len(self.injections)

    def earliest_epoch(self) -> int | None:
        """First epoch any injection touches, or None when empty."""
        epochs = [
            inj.epoch if not isinstance(inj, (RollingOutage, Flapping)) else inj.start_epoch
            for inj in self.injections
        ]
        return min(epochs) if epochs else None
