"""Compile a :class:`ChaosSchedule` into concrete engine events.

The controller is the bridge between the declarative schedule and the
engine's event queue: at simulation start it resolves every injection
against the real cluster's :class:`~repro.chaos.domains.FaultDomainIndex`
and WAN graph, drawing victims from the dedicated seeded ``"chaos"``
stream, and hands back a flat list of
:class:`~repro.sim.events.ChaosFailureEvent` /
:class:`~repro.sim.events.ChaosRecoveryEvent` /
:class:`~repro.sim.events.LinkFailureEvent` /
:class:`~repro.sim.events.LinkRecoveryEvent` the engine schedules like
any other membership event.

Compiling up-front (rather than deciding victims epoch by epoch) keeps
the whole injection sequence a pure function of ``(config.seed,
schedule)`` — the property the golden-run determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..geo.hierarchy import GeoHierarchy
from ..net.graph import WanGraph
from ..sim.events import (
    ChaosFailureEvent,
    ChaosRecoveryEvent,
    LinkFailureEvent,
    LinkRecoveryEvent,
    MembershipEvent,
)
from .domains import FaultDomain, FaultDomainIndex
from .schedule import (
    ChaosSchedule,
    CorrelatedFailure,
    Flapping,
    RollingOutage,
    WanPartition,
)

__all__ = ["ChaosController", "ChaosSummary"]


@dataclass(frozen=True)
class ChaosSummary:
    """What a compiled schedule will actually do, for run reports."""

    schedule: str
    injections: int
    failure_events: int
    recovery_events: int
    servers_failed: int
    links_cut: int
    domains_hit: tuple[str, ...]


class ChaosController:
    """Resolves one schedule against one concrete world.

    Parameters
    ----------
    schedule:
        The declarative injection bundle.
    index:
        Fault domains of the cluster being tortured.
    hierarchy / wan:
        Topology, needed to resolve :class:`WanPartition` cuts.
    rng:
        The simulation's ``"chaos"`` stream; draws happen in injection
        order, so compilation is deterministic.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        index: FaultDomainIndex,
        hierarchy: GeoHierarchy,
        wan: WanGraph,
        rng: np.random.Generator,
    ) -> None:
        self.schedule = schedule
        self._index = index
        self._hierarchy = hierarchy
        self._wan = wan
        self._rng = rng
        self._domains_hit: list[str] = []
        self._events: list[MembershipEvent] = []
        for injection in schedule.injections:
            if isinstance(injection, CorrelatedFailure):
                self._compile_correlated(injection)
            elif isinstance(injection, RollingOutage):
                self._compile_rolling(injection)
            elif isinstance(injection, Flapping):
                self._compile_flapping(injection)
            elif isinstance(injection, WanPartition):
                self._compile_partition(injection)
            else:  # pragma: no cover - closed union
                raise ConfigurationError(f"unknown injection: {injection!r}")

    # ------------------------------------------------------------------
    # Per-injection compilation
    # ------------------------------------------------------------------
    def _draw_domains(self, scope: str, count: int) -> list[FaultDomain]:
        pool = self._index.domains(scope)
        if count > len(pool):
            raise ConfigurationError(
                f"cannot hit {count} {scope} domains, only {len(pool)} exist"
            )
        picks = self._rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in sorted(picks)]

    def _compile_correlated(self, injection: CorrelatedFailure) -> None:
        if injection.domain_keys:
            domains = [self._index.domain(key) for key in injection.domain_keys]
        else:
            domains = self._draw_domains(injection.scope, injection.domains)
        sids = tuple(sorted(sid for d in domains for sid in d.sids))
        self._domains_hit.extend(d.key for d in domains)
        cause = f"{injection.scope}-outage"
        self._events.append(ChaosFailureEvent(injection.epoch, sids, cause=cause))
        if injection.downtime is not None:
            self._events.append(
                ChaosRecoveryEvent(
                    injection.epoch + injection.downtime, sids, cause=f"{cause}-heal"
                )
            )

    def _compile_rolling(self, injection: RollingOutage) -> None:
        domains = self._draw_domains(injection.scope, injection.domains)
        for i, domain in enumerate(domains):
            down = injection.start_epoch + i * injection.stride
            self._domains_hit.append(domain.key)
            self._events.append(
                ChaosFailureEvent(down, domain.sids, cause=f"rolling-{injection.scope}")
            )
            self._events.append(
                ChaosRecoveryEvent(
                    down + injection.downtime,
                    domain.sids,
                    cause=f"rolling-{injection.scope}-heal",
                )
            )

    def _compile_flapping(self, injection: Flapping) -> None:
        servers = self._index.domains("server")
        count = min(injection.count, len(servers))
        picks = self._rng.choice(len(servers), size=count, replace=False)
        flappers = [servers[int(i)] for i in sorted(picks)]
        for domain in flappers:
            self._domains_hit.append(domain.key)
            # Seeded phase offset: flappers drift apart instead of
            # slamming the cluster in lockstep.
            offset = int(self._rng.integers(0, injection.period))
            for cycle in range(injection.cycles):
                down = injection.start_epoch + offset + cycle * injection.period
                self._events.append(
                    ChaosFailureEvent(down, domain.sids, cause="flap-down")
                )
                self._events.append(
                    ChaosRecoveryEvent(
                        down + injection.down_epochs, domain.sids, cause="flap-up"
                    )
                )

    def _compile_partition(self, injection: WanPartition) -> None:
        if injection.isolate is not None:
            side = {self._hierarchy.by_name(name).index for name in injection.isolate}
        else:
            continents = sorted(
                {site.continent for site in self._hierarchy.sites}
            )
            pick = continents[int(self._rng.integers(0, len(continents)))]
            side = set(self._hierarchy.indices_by_continent(pick))
        if len(side) >= self._hierarchy.num_datacenters:
            raise ConfigurationError(
                "a WAN partition must leave at least one datacenter outside "
                f"the isolated side, got {sorted(side)}"
            )
        cut = tuple(
            (u, v)
            for u, v, _dist in self._wan.edges()
            if (u in side) != (v in side)
        )
        if not cut:
            raise ConfigurationError(
                f"isolating {sorted(side)} cuts no WAN links — already isolated?"
            )
        self._domains_hit.append(
            "wan:" + ",".join(self._hierarchy.site(dc).name for dc in sorted(side))
        )
        self._events.append(LinkFailureEvent(injection.epoch, cut))
        self._events.append(
            LinkRecoveryEvent(injection.epoch + injection.duration, cut)
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def compiled_events(self) -> tuple[MembershipEvent, ...]:
        """Every concrete event, in compilation order (the engine's
        queue re-sorts by epoch with stable FIFO tie-break)."""
        return tuple(self._events)

    def summary(self) -> ChaosSummary:
        """Aggregate of what the compiled schedule injects."""
        failures = [e for e in self._events if isinstance(e, ChaosFailureEvent)]
        recoveries = [e for e in self._events if isinstance(e, ChaosRecoveryEvent)]
        links = {
            link
            for e in self._events
            if isinstance(e, LinkFailureEvent)
            for link in e.links
        }
        return ChaosSummary(
            schedule=self.schedule.name,
            injections=len(self.schedule),
            failure_events=len(failures),
            recovery_events=len(recoveries),
            servers_failed=len({sid for e in failures for sid in e.sids}),
            links_cut=len(links),
            domains_hit=tuple(self._domains_hit),
        )
