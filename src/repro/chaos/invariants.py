"""Runtime conservation invariants over the engine's world state.

The simulation mutates three coupled structures every epoch — cluster
(liveness, storage), replica map (placement multiset, holder pointers)
and ring — through many code paths (membership events, restores, policy
actions, chaos injections).  :class:`InvariantChecker` re-derives the
relationships those paths must preserve and validates them at every
epoch boundary:

* **no-copy-on-dead-server** — a failed server's disk is wiped, so no
  partition may still count copies there;
* **live-holder** — every partition with at least one copy has a holder
  pointer, the holder is alive, and it actually holds a copy; at epoch
  end (post-restore) every partition has at least one copy;
* **replica-matrix** — the per-server counts, per-partition totals,
  per-DC grouping cache and the global total all describe the same
  multiset (guards the ``ReplicaMap`` cache-invalidation paths);
* **storage-accounting** — every alive server's storage equals its
  copies × partition size, usage is within ``[0, capacity]``, and the
  per-DC sums add up to the global ``total_replicas × size``.

A failed check raises (strict mode) or collects a structured
:class:`InvariantViolation` naming the epoch and the offending
partition/server; the engine traces each violation through
``repro.obs`` before raising.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster
from ..cluster.replicas import ReplicaMap
from ..errors import SimulationError

__all__ = ["InvariantViolation", "InvariantChecker", "INVARIANT_NAMES"]

#: Every invariant the checker validates, for consumers that group by it.
INVARIANT_NAMES: tuple[str, ...] = (
    "no-copy-on-dead-server",
    "live-holder",
    "replica-matrix",
    "storage-accounting",
)


class InvariantViolation(SimulationError):
    """One broken invariant, pinned to an epoch and an offender.

    Attributes
    ----------
    invariant:
        Which rule broke (one of :data:`INVARIANT_NAMES`).
    epoch:
        Epoch the check ran at.
    partition / server:
        The offending partition / server id, when one exists.
    detail:
        Human-readable specifics (expected vs actual).
    """

    def __init__(
        self,
        invariant: str,
        epoch: int,
        detail: str,
        *,
        partition: int | None = None,
        server: int | None = None,
    ) -> None:
        self.invariant = invariant
        self.epoch = epoch
        self.partition = partition
        self.server = server
        self.detail = detail
        where = f"invariant {invariant!r} violated at epoch {epoch}"
        if partition is not None:
            where += f", partition {partition}"
        if server is not None:
            where += f", server {server}"
        super().__init__(f"{where}: {detail}")


class InvariantChecker:
    """Validates the conservation invariants of one world state.

    Parameters
    ----------
    strict:
        When True (the default), the engine raises the first violation;
        when False it only traces/counts them and the run continues —
        useful for harvesting every inconsistency of a buggy build in
        one pass.
    tolerance_mb:
        Absolute slack for floating-point storage comparisons.
    """

    def __init__(self, strict: bool = True, tolerance_mb: float = 1e-6) -> None:
        self.strict = strict
        self.tolerance_mb = float(tolerance_mb)
        #: Total violations seen across all :meth:`collect` calls.
        self.violations_seen = 0

    # ------------------------------------------------------------------
    def collect(
        self, epoch: int, cluster: Cluster, replicas: ReplicaMap
    ) -> list[InvariantViolation]:
        """Return every violation of the current state (empty == healthy)."""
        out: list[InvariantViolation] = []
        size = replicas.partition_size_mb
        expected_mb: dict[int, float] = {}

        for partition in range(replicas.num_partitions):
            entries = replicas.servers_with(partition)
            total = 0
            for sid, count in entries:
                if count <= 0:
                    out.append(
                        InvariantViolation(
                            "replica-matrix",
                            epoch,
                            f"non-positive replica count {count}",
                            partition=partition,
                            server=sid,
                        )
                    )
                total += count
                expected_mb[sid] = expected_mb.get(sid, 0.0) + count * size
                if not cluster.server(sid).alive:
                    out.append(
                        InvariantViolation(
                            "no-copy-on-dead-server",
                            epoch,
                            f"{count} copies recorded on a failed server",
                            partition=partition,
                            server=sid,
                        )
                    )
            if total != replicas.replica_count(partition):
                out.append(
                    InvariantViolation(
                        "replica-matrix",
                        epoch,
                        f"servers_with sums to {total} but replica_count says "
                        f"{replicas.replica_count(partition)}",
                        partition=partition,
                    )
                )
            out.extend(self._check_holder(epoch, cluster, replicas, partition, total))
            out.extend(self._check_dc_grouping(epoch, cluster, replicas, partition, entries))

        out.extend(self._check_storage(epoch, cluster, replicas, expected_mb))

        per_partition = sum(replicas.per_partition_counts())
        if per_partition != replicas.total_replicas():
            out.append(
                InvariantViolation(
                    "replica-matrix",
                    epoch,
                    f"per-partition counts sum to {per_partition} but "
                    f"total_replicas says {replicas.total_replicas()}",
                )
            )
        self.violations_seen += len(out)
        return out

    def check(self, epoch: int, cluster: Cluster, replicas: ReplicaMap) -> None:
        """Raise the first violation found, if any."""
        violations = self.collect(epoch, cluster, replicas)
        if violations:
            raise violations[0]

    # ------------------------------------------------------------------
    def _check_holder(
        self,
        epoch: int,
        cluster: Cluster,
        replicas: ReplicaMap,
        partition: int,
        total: int,
    ) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        if not replicas.has_holder(partition):
            # The engine restores fully-lost partitions before serving,
            # so a missing holder at a check point is a conservation bug
            # whether or not stray copies remain.
            out.append(
                InvariantViolation(
                    "live-holder",
                    epoch,
                    f"partition has {total} copies but no holder pointer",
                    partition=partition,
                )
            )
            return out
        holder = replicas.holder(partition)
        if not cluster.server(holder).alive:
            out.append(
                InvariantViolation(
                    "live-holder",
                    epoch,
                    "holder points at a failed server",
                    partition=partition,
                    server=holder,
                )
            )
        if replicas.count(partition, holder) < 1:
            out.append(
                InvariantViolation(
                    "live-holder",
                    epoch,
                    "holder holds no copy of its own partition",
                    partition=partition,
                    server=holder,
                )
            )
        return out

    def _check_dc_grouping(
        self,
        epoch: int,
        cluster: Cluster,
        replicas: ReplicaMap,
        partition: int,
        entries: tuple[tuple[int, int], ...],
    ) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        grouped = replicas.replicas_by_dc(partition)
        flat: list[tuple[int, int]] = []
        for dc, dc_entries in grouped.items():
            for sid, count in dc_entries:
                flat.append((sid, count))
                if cluster.dc_of(sid) != dc:
                    out.append(
                        InvariantViolation(
                            "replica-matrix",
                            epoch,
                            f"dc cache files server under dc {dc} but it lives "
                            f"in dc {cluster.dc_of(sid)}",
                            partition=partition,
                            server=sid,
                        )
                    )
        if sorted(flat) != sorted(entries):
            out.append(
                InvariantViolation(
                    "replica-matrix",
                    epoch,
                    f"dc grouping cache {sorted(flat)} disagrees with "
                    f"servers_with {sorted(entries)}",
                    partition=partition,
                )
            )
        return out

    def _check_storage(
        self,
        epoch: int,
        cluster: Cluster,
        replicas: ReplicaMap,
        expected_mb: dict[int, float],
    ) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        tol = self.tolerance_mb
        total_used = 0.0
        for server in cluster.servers:
            used = server.storage_used_mb
            if used < -tol:
                out.append(
                    InvariantViolation(
                        "storage-accounting",
                        epoch,
                        f"negative storage {used} MB",
                        server=server.sid,
                    )
                )
            if used > server.storage_capacity_mb + tol:
                out.append(
                    InvariantViolation(
                        "storage-accounting",
                        epoch,
                        f"storage {used} MB exceeds capacity "
                        f"{server.storage_capacity_mb} MB",
                        server=server.sid,
                    )
                )
            if server.alive:
                expected = expected_mb.get(server.sid, 0.0)
                if abs(used - expected) > tol:
                    out.append(
                        InvariantViolation(
                            "storage-accounting",
                            epoch,
                            f"stores {used} MB but replica map accounts for "
                            f"{expected} MB",
                            server=server.sid,
                        )
                    )
                total_used += used
        expected_total = replicas.total_replicas() * replicas.partition_size_mb
        # Per-DC sums must add up across the deployment (dead servers
        # hold nothing, so alive-only total is the global total).
        if abs(total_used - expected_total) > tol * max(1, cluster.num_servers):
            out.append(
                InvariantViolation(
                    "storage-accounting",
                    epoch,
                    f"cluster stores {total_used} MB across datacenters but "
                    f"{replicas.total_replicas()} copies account for "
                    f"{expected_total} MB",
                )
            )
        return out
