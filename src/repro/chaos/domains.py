"""Fault domains: the geo hierarchy read as failure-correlation scopes.

The paper's labels (``continent-country-datacenter-room-rack-server``,
Section II-A) exist because real outages are *correlated*: a power bus
takes out a rack, a cooling failure a room, a regional incident a whole
datacenter.  The evaluation (Section III-G) only ever removes uniform
random servers; the chaos subsystem instead fails whole label prefixes.

:class:`FaultDomainIndex` enumerates, for one concrete cluster, every
domain of every scope — each a :class:`FaultDomain` naming the member
server ids — in deterministic (dc, room, rack, sid) order so a seeded
draw over domains is reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..errors import SimulationError

__all__ = ["FAULT_SCOPES", "FaultDomain", "FaultDomainIndex"]

#: Failure-correlation scopes, innermost first.  ``wan-link`` failures
#: are handled separately (they cut graph edges, not servers) by
#: :class:`~repro.chaos.schedule.WanPartition`.
FAULT_SCOPES: tuple[str, ...] = ("server", "rack", "room", "datacenter")


@dataclass(frozen=True)
class FaultDomain:
    """One blast radius: a scope, a stable key, and the servers inside.

    Keys follow the label hierarchy, e.g. ``"dc:3"``, ``"dc:3/C01"``,
    ``"dc:3/C01/R02"``, ``"server:17"``.
    """

    scope: str
    key: str
    sids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.scope not in FAULT_SCOPES:
            raise SimulationError(
                f"unknown fault scope {self.scope!r}; choose from {FAULT_SCOPES}"
            )
        if not self.sids:
            raise SimulationError(f"fault domain {self.key!r} has no servers")


class FaultDomainIndex:
    """Every fault domain of one cluster, grouped by scope.

    Built once from the cluster's construction-time layout; servers
    joined later are *not* re-indexed (chaos schedules are compiled at
    simulation start, against the initial topology, which keeps the
    compiled event list a pure function of config + seed).
    """

    def __init__(self, cluster: Cluster) -> None:
        by_rack: dict[tuple[int, str, str], list[int]] = {}
        by_room: dict[tuple[int, str], list[int]] = {}
        by_dc: dict[int, list[int]] = {}
        servers: list[FaultDomain] = []
        for server in cluster.servers:
            label = server.label
            by_rack.setdefault((server.dc, label.room, label.rack), []).append(server.sid)
            by_room.setdefault((server.dc, label.room), []).append(server.sid)
            by_dc.setdefault(server.dc, []).append(server.sid)
            servers.append(
                FaultDomain("server", f"server:{server.sid}", (server.sid,))
            )
        self._domains: dict[str, tuple[FaultDomain, ...]] = {
            "server": tuple(servers),
            "rack": tuple(
                FaultDomain("rack", f"dc:{dc}/{room}/{rack}", tuple(sids))
                for (dc, room, rack), sids in sorted(by_rack.items())
            ),
            "room": tuple(
                FaultDomain("room", f"dc:{dc}/{room}", tuple(sids))
                for (dc, room), sids in sorted(by_room.items())
            ),
            "datacenter": tuple(
                FaultDomain("datacenter", f"dc:{dc}", tuple(sids))
                for dc, sids in sorted(by_dc.items())
            ),
        }
        self._by_key = {
            domain.key: domain
            for domains in self._domains.values()
            for domain in domains
        }

    def domains(self, scope: str) -> tuple[FaultDomain, ...]:
        """All domains of one scope, in deterministic order."""
        try:
            return self._domains[scope]
        except KeyError:
            raise SimulationError(
                f"unknown fault scope {scope!r}; choose from {FAULT_SCOPES}"
            ) from None

    def domain(self, key: str) -> FaultDomain:
        """Domain by key (``"dc:3/C01/R02"``); raises if unknown."""
        try:
            return self._by_key[key]
        except KeyError:
            raise SimulationError(f"unknown fault domain {key!r}") from None

    def num_domains(self, scope: str) -> int:
        return len(self.domains(scope))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {scope: len(d) for scope, d in self._domains.items()}
        return f"FaultDomainIndex({counts})"
