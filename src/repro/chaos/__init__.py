"""Hierarchy-aware chaos engineering for the simulation (``repro.chaos``).

The paper's evaluation only removes uniform random single servers
(Section III-G, Fig. 10), yet its own geo hierarchy exists because real
outages are *correlated* — racks, rooms and whole datacenters fail
together, and node churn is where replication algorithms diverge.  This
package turns the reproduction into a fault-tolerance lab:

* :mod:`repro.chaos.domains` — the geo hierarchy read as fault domains
  (server / rack / room / datacenter);
* :mod:`repro.chaos.schedule` — declarative typed injections: correlated
  mass failure, rolling outage, flapping nodes, WAN partition;
* :mod:`repro.chaos.controller` — compiles a schedule against a concrete
  cluster into deterministic engine events;
* :mod:`repro.chaos.invariants` — the runtime
  :class:`~repro.chaos.invariants.InvariantChecker` validating the
  engine's conservation invariants every epoch.

Wire a schedule through :class:`repro.sim.engine.Simulation`::

    sim = Simulation(config, chaos=schedule, invariants=True)

or from the command line::

    python -m repro chaos rack-outage --seed 42
    python -m repro run --policy rfh --chaos flapping
"""

from .controller import ChaosController, ChaosSummary
from .domains import FAULT_SCOPES, FaultDomain, FaultDomainIndex
from .invariants import INVARIANT_NAMES, InvariantChecker, InvariantViolation
from .schedule import (
    ChaosInjection,
    ChaosSchedule,
    CorrelatedFailure,
    Flapping,
    RollingOutage,
    WanPartition,
)

__all__ = [
    "FAULT_SCOPES",
    "FaultDomain",
    "FaultDomainIndex",
    "ChaosInjection",
    "ChaosSchedule",
    "CorrelatedFailure",
    "RollingOutage",
    "Flapping",
    "WanPartition",
    "ChaosController",
    "ChaosSummary",
    "INVARIANT_NAMES",
    "InvariantChecker",
    "InvariantViolation",
]
