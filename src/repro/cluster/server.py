"""One physical storage server.

Each server (Table I / Section III-A) has "a fixed storage capacity, and
... a fixed bandwidth and processing capacity to serve a certain number
of queries in each epoch.  It also has fixed replication and migration
bandwidth capacities.  However, for every server, their capacities are
different from each other."

A :class:`Server` is deliberately dumb: it tracks its own storage and
per-epoch bandwidth budgets and enforces local invariants; everything
about *what* is stored where lives in
:class:`~repro.cluster.replicas.ReplicaMap`.
"""

from __future__ import annotations

from ..errors import CapacityError, SimulationError
from ..geo.labels import GeoLabel

__all__ = ["Server"]


class Server:
    """A physical server with storage and bandwidth accounting.

    Parameters
    ----------
    sid:
        Global server index (stable for the lifetime of the simulation;
        failed servers keep their sid so recovery is an identity event).
    dc:
        Datacenter index the server lives in.
    label:
        Geographic label (``continent-country-datacenter-room-rack-server``).
    storage_capacity_mb:
        Total disk capacity.
    replica_capacity:
        Queries one replica hosted here can serve per epoch (the paper's
        ``C_ikl``; constant across replicas of one server, heterogeneous
        across servers).
    replication_bandwidth_mb / migration_bandwidth_mb:
        Per-epoch outbound budgets for replication and migration traffic.
    service_slots:
        Concurrent service positions, the ``c`` of the M/G/c blocking
        model (Eq. 18).
    """

    __slots__ = (
        "sid",
        "dc",
        "label",
        "storage_capacity_mb",
        "replica_capacity",
        "replication_bandwidth_mb",
        "migration_bandwidth_mb",
        "service_slots",
        "_storage_used_mb",
        "_replication_budget_mb",
        "_migration_budget_mb",
        "_alive",
    )

    def __init__(
        self,
        sid: int,
        dc: int,
        label: GeoLabel,
        storage_capacity_mb: float,
        replica_capacity: float,
        replication_bandwidth_mb: float,
        migration_bandwidth_mb: float,
        service_slots: int,
    ) -> None:
        if storage_capacity_mb <= 0:
            raise CapacityError(f"server {sid}: storage capacity must be > 0")
        if replica_capacity <= 0:
            raise CapacityError(f"server {sid}: replica capacity must be > 0")
        if service_slots < 1:
            raise CapacityError(f"server {sid}: service_slots must be >= 1")
        self.sid = sid
        self.dc = dc
        self.label = label
        self.storage_capacity_mb = float(storage_capacity_mb)
        self.replica_capacity = float(replica_capacity)
        self.replication_bandwidth_mb = float(replication_bandwidth_mb)
        self.migration_bandwidth_mb = float(migration_bandwidth_mb)
        self.service_slots = int(service_slots)
        self._storage_used_mb = 0.0
        self._replication_budget_mb = self.replication_bandwidth_mb
        self._migration_budget_mb = self.migration_bandwidth_mb
        self._alive = True

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the server is currently up."""
        return self._alive

    def fail(self) -> None:
        """Take the server down; its stored data is lost (disk wiped)."""
        self._alive = False
        self._storage_used_mb = 0.0

    def recover(self) -> None:
        """Bring the server back up, empty (replicas must be re-placed)."""
        if self._alive:
            raise SimulationError(f"server {self.sid} is already alive")
        self._alive = True
        self._storage_used_mb = 0.0

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def storage_used_mb(self) -> float:
        """Megabytes currently stored."""
        return self._storage_used_mb

    @property
    def storage_utilization(self) -> float:
        """Fraction of storage in use, the ``S_i`` of Eq. 19."""
        return self._storage_used_mb / self.storage_capacity_mb

    def storage_gate_open(self, extra_mb: float, phi: float) -> bool:
        """Would storing ``extra_mb`` more keep utilisation *below* ``phi``?

        Implements Eq. 19 (``S_i < phi``, default 70 %): a server at or
        above the gate refuses replication and migration requests.
        """
        return (self._storage_used_mb + extra_mb) / self.storage_capacity_mb < phi

    def store(self, size_mb: float) -> None:
        """Account ``size_mb`` of new data.

        Raises
        ------
        CapacityError
            If the server is down or the write exceeds raw capacity.
            (The *soft* gate ``phi`` is checked by placement logic; this
            hard check only guards physical capacity.)
        """
        if not self._alive:
            raise CapacityError(f"server {self.sid} is down")
        if size_mb < 0:
            raise CapacityError(f"cannot store a negative size: {size_mb}")
        if self._storage_used_mb + size_mb > self.storage_capacity_mb + 1e-9:
            raise CapacityError(
                f"server {self.sid}: storing {size_mb} MB would exceed capacity "
                f"({self._storage_used_mb}/{self.storage_capacity_mb} MB used)"
            )
        self._storage_used_mb += size_mb

    def release(self, size_mb: float) -> None:
        """Release previously stored data."""
        if size_mb < 0:
            raise CapacityError(f"cannot release a negative size: {size_mb}")
        if size_mb > self._storage_used_mb + 1e-9:
            raise SimulationError(
                f"server {self.sid}: releasing {size_mb} MB but only "
                f"{self._storage_used_mb} MB is stored"
            )
        self._storage_used_mb = max(0.0, self._storage_used_mb - size_mb)

    # ------------------------------------------------------------------
    # Per-epoch bandwidth budgets
    # ------------------------------------------------------------------
    def reset_epoch_budgets(self) -> None:
        """Refill the replication/migration budgets at an epoch boundary."""
        self._replication_budget_mb = self.replication_bandwidth_mb
        self._migration_budget_mb = self.migration_bandwidth_mb

    @property
    def replication_budget_mb(self) -> float:
        """Outbound replication bandwidth left this epoch."""
        return self._replication_budget_mb

    @property
    def migration_budget_mb(self) -> float:
        """Outbound migration bandwidth left this epoch."""
        return self._migration_budget_mb

    def consume_replication_bandwidth(self, size_mb: float) -> bool:
        """Try to reserve replication bandwidth; False when exhausted."""
        if size_mb > self._replication_budget_mb + 1e-9:
            return False
        self._replication_budget_mb -= size_mb
        return True

    def consume_migration_bandwidth(self, size_mb: float) -> bool:
        """Try to reserve migration bandwidth; False when exhausted."""
        if size_mb > self._migration_budget_mb + 1e-9:
            return False
        self._migration_budget_mb -= size_mb
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._alive else "DOWN"
        return f"Server(sid={self.sid}, dc={self.dc}, {state}, label={self.label})"
