"""Physical cluster substrate (paper Section III-A).

Servers with heterogeneous storage / processing / bandwidth capacities,
organised as datacenter → room → rack → server per Table I, plus replica
placement state and failure/recovery helpers:

* :mod:`repro.cluster.server` — one physical server;
* :mod:`repro.cluster.datacenter` — a datacenter's server grouping;
* :mod:`repro.cluster.cluster` — the whole deployment with deterministic
  capacity draws and membership mutation (join / fail / recover);
* :mod:`repro.cluster.replicas` — the authoritative replica-placement
  map with storage accounting;
* :mod:`repro.cluster.failure` — failure-injection helpers.
"""

from .cluster import Cluster
from .datacenter import Datacenter
from .failure import FailureInjector
from .replicas import ReplicaMap
from .server import Server

__all__ = ["Server", "Datacenter", "Cluster", "ReplicaMap", "FailureInjector"]
