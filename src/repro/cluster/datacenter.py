"""A datacenter: the grouping of servers at one site.

The paper's placement decisions are two-level: the algorithm first picks
a *datacenter* (the traffic hub / owner neighbour / requester site), then
a *server inside it* (lowest blocking probability, Eq. 18, subject to the
storage gate of Eq. 19).  :class:`Datacenter` provides the inside-a-site
queries that the second step needs.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..geo.hierarchy import DatacenterSite
from .server import Server

__all__ = ["Datacenter"]


class Datacenter:
    """Servers co-located at one :class:`~repro.geo.hierarchy.DatacenterSite`."""

    def __init__(self, site: DatacenterSite, servers: list[Server]) -> None:
        for server in servers:
            if server.dc != site.index:
                raise TopologyError(
                    f"server {server.sid} belongs to DC {server.dc}, not {site.index}"
                )
        self._site = site
        self._servers = list(servers)

    @property
    def site(self) -> DatacenterSite:
        """The geographic site of this datacenter."""
        return self._site

    @property
    def index(self) -> int:
        """Datacenter index (== ``site.index``)."""
        return self._site.index

    @property
    def name(self) -> str:
        """Letter name (``"A"``..)."""
        return self._site.name

    @property
    def servers(self) -> tuple[Server, ...]:
        """All servers ever placed here, in sid order (including failed)."""
        return tuple(self._servers)

    def alive_servers(self) -> tuple[Server, ...]:
        """Currently-up servers in sid order."""
        return tuple(s for s in self._servers if s.alive)

    @property
    def num_alive(self) -> int:
        """Number of currently-up servers."""
        return sum(1 for s in self._servers if s.alive)

    def total_replica_capacity(self) -> float:
        """Sum of per-replica capacities over alive servers.

        An upper bound on per-partition service this site could offer if
        each alive server hosted one replica.
        """
        return sum(s.replica_capacity for s in self._servers if s.alive)

    def add_server(self, server: Server) -> None:
        """Attach a newly-joined server (keeps sid ordering)."""
        if server.dc != self._site.index:
            raise TopologyError(
                f"server {server.sid} belongs to DC {server.dc}, not {self._site.index}"
            )
        self._servers.append(server)
        self._servers.sort(key=lambda s: s.sid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Datacenter({self.name}, servers={len(self._servers)}, alive={self.num_alive})"
