"""Authoritative replica-placement state.

:class:`ReplicaMap` records, for every partition, which servers hold how
many copies (the paper's ``m_ikt``: "the number of total replicas of
partition B_i that are now in physical node N_k" — a physical node hosts
virtual nodes, so multiplicity > 1 is legal) and which server is the
*primary holder* of the original partition.

Counting convention (used consistently by the Fig. 4 metrics): the
original copy at the holder *is* a replica, so a freshly bootstrapped
partition has replica count 1 and ``m_i,holder = 1``.

Every mutation keeps server storage accounting in sync: adding a copy
stores ``partition_size_mb`` on the target server, removing releases it.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import ActionError, SimulationError
from .cluster import Cluster

__all__ = ["ReplicaMap"]


class ReplicaMap:
    """Per-partition replica multiset with storage side-effects.

    Parameters
    ----------
    cluster:
        The physical deployment; storage is debited/credited on it.
    num_partitions:
        Number of data partitions (Table I: 64).
    partition_size_mb:
        Size of one partition copy (Table I: 512 KB = 0.5 MB).
    """

    def __init__(self, cluster: Cluster, num_partitions: int, partition_size_mb: float) -> None:
        if num_partitions < 1:
            raise ActionError(f"num_partitions must be >= 1, got {num_partitions}")
        if partition_size_mb <= 0:
            raise ActionError(f"partition_size_mb must be > 0, got {partition_size_mb}")
        self._cluster = cluster
        self._num_partitions = num_partitions
        self._size_mb = float(partition_size_mb)
        self._counts: list[dict[int, int]] = [dict() for _ in range(num_partitions)]
        self._holder: list[int | None] = [None] * num_partitions
        # Lazily-built per-partition grouping {dc: [(sid, count), ...]}.
        self._dc_cache: list[dict[int, list[tuple[int, int]]] | None] = [None] * num_partitions
        # Optional columnar mirror (repro.sim.columnar.state.SimState):
        # notified on every count/holder mutation so a dense replica
        # matrix can track this map without O(P*S) rebuilds.
        self._mirror = None

    # ------------------------------------------------------------------
    # Columnar mirror
    # ------------------------------------------------------------------
    def attach_mirror(self, mirror) -> None:
        """Attach an object receiving ``on_count(partition, sid, count)``
        and ``on_holder(partition, sid_or_none)`` on every mutation.

        The mirror is responsible for syncing itself to the current state
        at attach time; only one mirror is supported."""
        self._mirror = mirror

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, holders: list[int]) -> None:
        """Place the original copy of every partition on its holder."""
        if len(holders) != self._num_partitions:
            raise ActionError(
                f"expected {self._num_partitions} holders, got {len(holders)}"
            )
        for partition, sid in enumerate(holders):
            if self._holder[partition] is not None:
                raise SimulationError(f"partition {partition} already bootstrapped")
            self._holder[partition] = sid
            if self._mirror is not None:
                self._mirror.on_holder(partition, sid)
            self._cluster.server(sid).store(self._size_mb)
            self._add_count(partition, sid)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def partition_size_mb(self) -> float:
        return self._size_mb

    def holder(self, partition: int) -> int:
        """Primary holder's server id.

        Raises :class:`SimulationError` when the partition has lost *all*
        copies and has not been restored yet.
        """
        self._check_partition(partition)
        holder = self._holder[partition]
        if holder is None:
            raise SimulationError(f"partition {partition} currently has no holder")
        return holder

    def has_holder(self, partition: int) -> bool:
        """Whether the partition currently has a primary holder."""
        self._check_partition(partition)
        return self._holder[partition] is not None

    def count(self, partition: int, sid: int) -> int:
        """Copies of ``partition`` on server ``sid`` (``m_ik``)."""
        self._check_partition(partition)
        return self._counts[partition].get(sid, 0)

    def replica_count(self, partition: int) -> int:
        """Total copies of ``partition`` across all servers."""
        self._check_partition(partition)
        return sum(self._counts[partition].values())

    def servers_with(self, partition: int) -> tuple[tuple[int, int], ...]:
        """Sorted ``(sid, count)`` pairs of servers holding the partition."""
        self._check_partition(partition)
        return tuple(sorted(self._counts[partition].items()))

    def replicas_by_dc(self, partition: int) -> dict[int, list[tuple[int, int]]]:
        """Replica layout grouped by datacenter: ``{dc: [(sid, count)]}``.

        Cached until the partition's layout mutates; lists are sorted by
        sid for determinism.  Callers must not mutate the returned
        structure.
        """
        self._check_partition(partition)
        cache = self._dc_cache[partition]
        if cache is None:
            grouped: dict[int, list[tuple[int, int]]] = defaultdict(list)
            for sid, count in sorted(self._counts[partition].items()):
                grouped[self._cluster.dc_of(sid)].append((sid, count))
            cache = dict(grouped)
            self._dc_cache[partition] = cache
        return cache

    def total_replicas(self) -> int:
        """Total copies across all partitions (Fig. 4's "replica number")."""
        return sum(sum(c.values()) for c in self._counts)

    def per_partition_counts(self) -> list[int]:
        """Replica count per partition, index-aligned."""
        return [sum(c.values()) for c in self._counts]

    def partitions_on(self, sid: int) -> tuple[int, ...]:
        """Partitions with at least one copy on server ``sid``."""
        return tuple(
            p for p in range(self._num_partitions) if self._counts[p].get(sid, 0) > 0
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, partition: int, sid: int) -> None:
        """Add one copy on ``sid`` (stores ``partition_size_mb`` there).

        Raises
        ------
        ActionError
            If the target server is down.
        CapacityError
            If the target's raw storage is full.
        """
        self._check_partition(partition)
        server = self._cluster.server(sid)
        if not server.alive:
            raise ActionError(f"cannot place partition {partition} on down server {sid}")
        server.store(self._size_mb)
        self._add_count(partition, sid)

    def remove(self, partition: int, sid: int) -> None:
        """Remove one copy from ``sid`` (releases its storage).

        The last remaining copy of a partition cannot be removed — that
        would be data loss by policy action, which no algorithm in the
        paper performs voluntarily.
        """
        self._check_partition(partition)
        current = self._counts[partition].get(sid, 0)
        if current <= 0:
            raise ActionError(f"no copy of partition {partition} on server {sid}")
        if self.replica_count(partition) <= 1:
            raise ActionError(
                f"refusing to remove the last copy of partition {partition}"
            )
        server = self._cluster.server(sid)
        if server.alive:
            server.release(self._size_mb)
        if current == 1:
            del self._counts[partition][sid]
        else:
            self._counts[partition][sid] = current - 1
        self._dc_cache[partition] = None
        if self._mirror is not None:
            self._mirror.on_count(partition, sid, current - 1)
        # Keep the holder pointer on a server that still has a copy.
        if self._holder[partition] == sid and self._counts[partition].get(sid, 0) == 0:
            self._holder[partition] = min(self._counts[partition])
            if self._mirror is not None:
                self._mirror.on_holder(partition, self._holder[partition])

    def move(self, partition: int, src_sid: int, dst_sid: int) -> None:
        """Migrate one copy from ``src_sid`` to ``dst_sid`` atomically."""
        if src_sid == dst_sid:
            raise ActionError(f"migration source and destination are both {src_sid}")
        # Add first so the partition never transiently loses its last copy.
        self.add(partition, dst_sid)
        self.remove(partition, src_sid)

    def set_holder(self, partition: int, sid: int) -> None:
        """Point the primary-holder role at ``sid`` (must hold a copy)."""
        self._check_partition(partition)
        if self._counts[partition].get(sid, 0) <= 0:
            raise ActionError(
                f"server {sid} holds no copy of partition {partition}; cannot be holder"
            )
        self._holder[partition] = sid
        if self._mirror is not None:
            self._mirror.on_holder(partition, sid)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def drop_server(self, sid: int) -> tuple[int, ...]:
        """Erase all copies on a failed server; returns affected partitions.

        Storage is *not* released through :meth:`Server.release` — the
        server wiped its own disk in :meth:`Server.fail`.  Partitions that
        lose their holder are re-pointed at the surviving copy with the
        lowest sid; partitions that lose *every* copy get holder ``None``
        (the engine restores them, see Fig. 10 recovery).
        """
        affected: list[int] = []
        for partition in range(self._num_partitions):
            if self._counts[partition].pop(sid, 0) > 0:
                affected.append(partition)
                self._dc_cache[partition] = None
                if self._mirror is not None:
                    self._mirror.on_count(partition, sid, 0)
                if self._holder[partition] == sid:
                    survivors = self._counts[partition]
                    self._holder[partition] = min(survivors) if survivors else None
                    if self._mirror is not None:
                        self._mirror.on_holder(partition, self._holder[partition])
        return tuple(affected)

    def restore(self, partition: int, sid: int) -> None:
        """Re-create a fully-lost partition on ``sid`` as its new holder."""
        self._check_partition(partition)
        if self._holder[partition] is not None:
            raise SimulationError(f"partition {partition} still has a holder")
        self._holder[partition] = sid
        if self._mirror is not None:
            self._mirror.on_holder(partition, sid)
        server = self._cluster.server(sid)
        server.store(self._size_mb)
        self._add_count(partition, sid)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_count(self, partition: int, sid: int) -> None:
        counts = self._counts[partition]
        counts[sid] = counts.get(sid, 0) + 1
        self._dc_cache[partition] = None
        if self._mirror is not None:
            self._mirror.on_count(partition, sid, counts[sid])

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self._num_partitions:
            raise ActionError(f"unknown partition: {partition}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaMap(partitions={self._num_partitions}, "
            f"total_replicas={self.total_replicas()})"
        )
