"""Failure injection helpers (paper Section III-G, Fig. 10).

"Node failure is very common in Cloud storage system ... 30 servers are
randomly removed at epoch 290, resulting in a sharp decrease of replicas
number."

:class:`FailureInjector` picks victims deterministically from a seeded
stream and applies the failure to cluster + replica map in one step, so
engine code and tests share identical semantics.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .cluster import Cluster
from .replicas import ReplicaMap

__all__ = ["FailureInjector"]


class FailureInjector:
    """Deterministic random failures and recoveries."""

    def __init__(self, cluster: Cluster, rng: np.random.Generator) -> None:
        self._cluster = cluster
        self._rng = rng

    def choose_victims(self, count: int) -> tuple[int, ...]:
        """Pick ``count`` distinct alive servers uniformly at random."""
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count}")
        alive = list(self._cluster.alive_server_ids())
        if count > len(alive):
            raise SimulationError(
                f"cannot fail {count} servers, only {len(alive)} are alive"
            )
        picks = self._rng.choice(len(alive), size=count, replace=False)
        return tuple(sorted(alive[int(i)] for i in picks))

    def fail(self, replica_map: ReplicaMap, sids: tuple[int, ...]) -> dict[int, tuple[int, ...]]:
        """Fail each server in ``sids``; returns ``{sid: affected partitions}``.

        Copies on the failed servers are dropped from the replica map and
        orphaned partitions get their holder re-pointed (or cleared when
        every copy is gone — the engine's availability branch restores
        those next epoch, which is exactly Fig. 10's recovery dynamic).
        """
        affected: dict[int, tuple[int, ...]] = {}
        for sid in sids:
            self._cluster.fail_server(sid)
            affected[sid] = replica_map.drop_server(sid)
        return affected

    def fail_random(
        self, replica_map: ReplicaMap, count: int
    ) -> dict[int, tuple[int, ...]]:
        """Fail ``count`` random alive servers (Fig. 10's mass failure)."""
        return self.fail(replica_map, self.choose_victims(count))

    def recover(self, sids: tuple[int, ...]) -> None:
        """Bring previously-failed servers back up, empty."""
        for sid in sids:
            self._cluster.recover_server(sid)
