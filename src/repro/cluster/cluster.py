"""The full physical deployment.

Builds every server from a :class:`~repro.config.ClusterParameters`
(Table I defaults: 10 datacenters x 1 room x 2 racks x 5 servers = 100
servers) with deterministic, seeded heterogeneous capacity draws, and
owns membership mutation: server join, failure and recovery.
"""

from __future__ import annotations

import numpy as np

from ..config import ClusterParameters
from ..errors import SimulationError, TopologyError
from ..geo.hierarchy import GeoHierarchy
from .datacenter import Datacenter
from .server import Server

__all__ = ["Cluster"]


class Cluster:
    """All physical servers of the deployment, grouped by datacenter.

    Parameters
    ----------
    hierarchy:
        The datacenter sites (usually
        :func:`repro.geo.build_default_hierarchy`).
    params:
        Shape and capacity parameters (Table I defaults).
    rng:
        Seeded stream for the heterogeneous capacity draws ("for every
        server, their capacities are different from each other").
    """

    def __init__(
        self,
        hierarchy: GeoHierarchy,
        params: ClusterParameters,
        rng: np.random.Generator,
    ) -> None:
        self._hierarchy = hierarchy
        self._params = params
        self._rng = rng
        self._servers: list[Server] = []
        self._datacenters: list[Datacenter] = []
        for site in hierarchy.sites:
            dc_servers: list[Server] = []
            for room in range(params.rooms_per_datacenter):
                for rack in range(params.racks_per_room):
                    for slot in range(params.servers_per_rack):
                        server = self._make_server(site.index, room, rack, slot)
                        dc_servers.append(server)
            self._datacenters.append(Datacenter(site, dc_servers))

    def _make_server(self, dc_index: int, room: int, rack: int, slot: int) -> Server:
        params = self._params
        jitter = params.capacity_jitter
        # Uniform draw in [mean*(1-jitter), mean*(1+jitter)]; consumed in
        # construction order so the cluster is a pure function of the seed.
        factor = 1.0 + jitter * float(self._rng.uniform(-1.0, 1.0))
        server = Server(
            sid=len(self._servers),
            dc=dc_index,
            label=self._hierarchy.server_label(dc_index, room, rack, slot),
            storage_capacity_mb=params.storage_capacity_mb,
            replica_capacity=params.replica_capacity_mean * factor,
            replication_bandwidth_mb=params.replication_bandwidth_mb,
            migration_bandwidth_mb=params.migration_bandwidth_mb,
            service_slots=params.service_slots,
        )
        self._servers.append(server)
        return server

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> GeoHierarchy:
        """The geographic hierarchy this cluster was built on."""
        return self._hierarchy

    @property
    def params(self) -> ClusterParameters:
        """The construction parameters."""
        return self._params

    @property
    def num_servers(self) -> int:
        """Total servers ever created (alive or failed)."""
        return len(self._servers)

    @property
    def num_datacenters(self) -> int:
        return len(self._datacenters)

    @property
    def servers(self) -> tuple[Server, ...]:
        """All servers in sid order."""
        return tuple(self._servers)

    def server(self, sid: int) -> Server:
        """Server by global id; raises :class:`TopologyError` if unknown."""
        if not 0 <= sid < len(self._servers):
            raise TopologyError(f"unknown server id: {sid}")
        return self._servers[sid]

    def datacenter(self, index: int) -> Datacenter:
        """Datacenter by index."""
        if not 0 <= index < len(self._datacenters):
            raise TopologyError(f"unknown datacenter index: {index}")
        return self._datacenters[index]

    @property
    def datacenters(self) -> tuple[Datacenter, ...]:
        return tuple(self._datacenters)

    def alive_servers(self) -> tuple[Server, ...]:
        """All currently-up servers in sid order."""
        return tuple(s for s in self._servers if s.alive)

    def alive_server_ids(self) -> tuple[int, ...]:
        """Ids of currently-up servers, ascending."""
        return tuple(s.sid for s in self._servers if s.alive)

    def alive_in_dc(self, dc_index: int) -> tuple[Server, ...]:
        """Currently-up servers inside one datacenter."""
        return self.datacenter(dc_index).alive_servers()

    def dc_of(self, sid: int) -> int:
        """Datacenter index of a server."""
        return self.server(sid).dc

    # ------------------------------------------------------------------
    # Epoch bookkeeping
    # ------------------------------------------------------------------
    def reset_epoch_budgets(self) -> None:
        """Refill every alive server's bandwidth budgets (epoch boundary)."""
        for server in self._servers:
            if server.alive:
                server.reset_epoch_budgets()

    # ------------------------------------------------------------------
    # Membership mutation
    # ------------------------------------------------------------------
    def fail_server(self, sid: int) -> None:
        """Take one server down (its disk contents are lost)."""
        server = self.server(sid)
        if not server.alive:
            raise SimulationError(f"server {sid} is already down")
        server.fail()

    def recover_server(self, sid: int) -> None:
        """Bring a failed server back, empty."""
        self.server(sid).recover()

    def join_server(self, dc_index: int) -> Server:
        """Add a brand-new server to a datacenter (paper: "to allow
        physical nodes freely join or depart the system is another goal").

        The new server gets the next free sid and a label in a synthetic
        expansion rack; its capacities are drawn from the same stream as
        construction-time servers.
        """
        dc = self.datacenter(dc_index)
        slot = len(dc.servers)  # unique per-DC slot for the label
        params = self._params
        factor = 1.0 + params.capacity_jitter * float(self._rng.uniform(-1.0, 1.0))
        server = Server(
            sid=len(self._servers),
            dc=dc_index,
            label=self._hierarchy.server_label(
                dc_index,
                room=params.rooms_per_datacenter,  # expansion room index
                rack=0,
                server=slot,
            ),
            storage_capacity_mb=params.storage_capacity_mb,
            replica_capacity=params.replica_capacity_mean * factor,
            replication_bandwidth_mb=params.replication_bandwidth_mb,
            migration_bandwidth_mb=params.migration_bandwidth_mb,
            service_slots=params.service_slots,
        )
        self._servers.append(server)
        dc.add_server(server)
        return server

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(datacenters={self.num_datacenters}, servers={self.num_servers}, "
            f"alive={len(self.alive_servers())})"
        )
