"""The fixed circular hash space and stable hashing into it.

The ring is "a fixed circular space ... the output range of a hash
function" (Section II-B).  We use a 32-bit space (2^32 positions) and
SHA-1 — the classic consistent-hashing construction of Karger et al.
(paper refs [6][24]) — truncated to 32 bits.  SHA-1's cryptographic
strength is irrelevant here; what matters is that the mapping is uniform
and stable across processes (unlike Python's salted ``hash``).
"""

from __future__ import annotations

import hashlib

__all__ = ["HASH_SPACE_BITS", "HASH_SPACE_SIZE", "stable_hash", "ring_distance", "in_arc"]

#: Width of the identifier space in bits.
HASH_SPACE_BITS: int = 32

#: Number of positions on the ring (identifiers are ``0..HASH_SPACE_SIZE-1``).
HASH_SPACE_SIZE: int = 1 << HASH_SPACE_BITS


def stable_hash(key: str) -> int:
    """Map a string key onto the ring: ``sha1(key)`` truncated to 32 bits."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % HASH_SPACE_SIZE


def ring_distance(frm: int, to: int) -> int:
    """Clockwise distance from ``frm`` to ``to`` (0 when equal).

    Always in ``[0, HASH_SPACE_SIZE)``; asymmetric by design —
    ``ring_distance(a, b) + ring_distance(b, a) == HASH_SPACE_SIZE`` for
    distinct points.
    """
    return (to - frm) % HASH_SPACE_SIZE


def in_arc(point: int, start: int, end: int) -> bool:
    """Whether ``point`` lies on the clockwise arc ``(start, end]``.

    The half-open-on-the-left convention matches successor ownership: a
    token at position ``p`` owns the arc ``(predecessor, p]`` including
    its own position.
    """
    if start == end:
        # The arc covers the whole ring (single-token degenerate case).
        return True
    return ring_distance(start, point) <= ring_distance(start, end) and point != start
