"""Consistent-hashing ring substrate (paper Section II-B).

"The partitioning scheme of RFH is built using a variant of consistent
hashing.  ...  A ring topology, which is treated as a fixed circular
space, is employed as the output range of a hash function.  A ring
consists of several virtual nodes.  Each node is assigned a random value
within the hashing space to represent its position.  A physical node
hosts an amount of virtual nodes within its capacity limit."

* :mod:`repro.ring.hashspace` — the fixed circular id space and stable
  hashing;
* :mod:`repro.ring.hashring` — tokens, successor lookup, minimal-
  disruption join/leave;
* :mod:`repro.ring.partition` — mapping data partitions to their primary
  holders;
* :mod:`repro.ring.finger` — Chord-style finger tables giving the
  O(log n) overlay lookup the paper cites for its routing layer.
"""

from .finger import FingerTable
from .overlay import OverlayAnalyzer, OverlayLookupStats
from .hashring import HashRing, Token
from .hashspace import HASH_SPACE_BITS, HASH_SPACE_SIZE, ring_distance, stable_hash
from .partition import PartitionMapper

__all__ = [
    "HASH_SPACE_BITS",
    "HASH_SPACE_SIZE",
    "stable_hash",
    "ring_distance",
    "Token",
    "HashRing",
    "PartitionMapper",
    "FingerTable",
    "OverlayAnalyzer",
    "OverlayLookupStats",
]
