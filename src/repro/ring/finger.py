"""Chord-style finger tables: the O(log n) overlay lookup.

The paper's routing layer "routes messages directly to the closest node
which has the desired ID and matches the prefix.  ...  The cost of
routing is O(log n)" (Section II-B).  We realise that bound with the
classic Chord construction (paper ref [14]) over the token ring: token
``t`` keeps a finger at each distance ``2^k`` and greedy routing halves
the remaining clockwise distance every hop.

The WAN-level traffic model routes at datacenter granularity (see
:mod:`repro.net.routing`); the finger table exists to reproduce and test
the overlay-cost claim and to resolve arbitrary keys without a central
directory.
"""

from __future__ import annotations

import bisect

from ..errors import RingError
from .hashring import HashRing, Token
from .hashspace import HASH_SPACE_BITS, HASH_SPACE_SIZE, ring_distance

__all__ = ["FingerTable"]


class FingerTable:
    """Finger tables for every token of a :class:`HashRing` snapshot.

    The table is built from the ring's *current* tokens; rebuild after
    membership changes (the engine does this on join/failure events).
    """

    def __init__(self, ring: HashRing) -> None:
        tokens = ring.tokens()
        if not tokens:
            raise RingError("cannot build finger tables over an empty ring")
        self._positions = [t.position for t in tokens]
        self._tokens = list(tokens)
        n = len(tokens)
        # _fingers[i][k] = index (into token list) of the first token at or
        # after position_i + 2^k.
        self._fingers: list[list[int]] = []
        for i in range(n):
            base = self._positions[i]
            row: list[int] = []
            for k in range(HASH_SPACE_BITS):
                target = (base + (1 << k)) % HASH_SPACE_SIZE
                row.append(self._successor_index(target))
            self._fingers.append(row)

    def _successor_index(self, key: int) -> int:
        idx = bisect.bisect_left(self._positions, key)
        return idx % len(self._positions)

    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        return len(self._tokens)

    def fingers_of(self, token_index: int) -> tuple[Token, ...]:
        """The finger targets of one token, nearest-first."""
        if not 0 <= token_index < len(self._tokens):
            raise RingError(f"unknown token index: {token_index}")
        return tuple(self._tokens[j] for j in self._fingers[token_index])

    def route(self, key: int, start_index: int = 0) -> tuple[Token, ...]:
        """The full greedy overlay route of ``key`` from a starting token.

        Returns the visited tokens, starting token first, key owner
        last.  Each hop jumps to the farthest finger that does not
        overshoot the key's owner, which bounds the length by O(log n).
        """
        if not 0 <= start_index < len(self._tokens):
            raise RingError(f"unknown token index: {start_index}")
        owner_index = self._successor_index(key)
        visited = [self._tokens[start_index]]
        current = start_index
        max_hops = len(self._tokens) + 1  # absolute safety net
        while current != owner_index:
            if len(visited) > max_hops:  # pragma: no cover - logic bug guard
                raise RingError(f"routing to key {key} did not converge")
            current = self._best_hop(current, key)
            visited.append(self._tokens[current])
        return tuple(visited)

    def lookup(self, key: int, start_index: int = 0) -> tuple[Token, int]:
        """Greedy overlay routing of ``key`` from a starting token.

        Returns ``(owner_token, hops)`` — see :meth:`route` for the full
        visited sequence.
        """
        route = self.route(key, start_index)
        return route[-1], len(route) - 1

    def _best_hop(self, current: int, key: int) -> int:
        """Farthest finger of ``current`` that stays within (current, key]."""
        base = self._positions[current]
        remaining = ring_distance(base, key)
        best = (current + 1) % len(self._tokens)  # immediate successor fallback
        best_advance = ring_distance(base, self._positions[best])
        for finger_index in reversed(self._fingers[current]):
            advance = ring_distance(base, self._positions[finger_index])
            if 0 < advance <= remaining and advance > best_advance:
                best = finger_index
                best_advance = advance
                break  # fingers are scanned farthest-first; first hit wins
        if best == current:
            raise RingError("finger routing stalled")  # pragma: no cover
        return best

    def lookup_from_server(self, ring: HashRing, key: int, start_sid: int) -> tuple[int, int]:
        """Route from any token of ``start_sid``; returns ``(owner_sid, hops)``."""
        for index, token in enumerate(self._tokens):
            if token.sid == start_sid:
                owner, hops = self.lookup(key, index)
                return owner.sid, hops
        raise RingError(f"server {start_sid} has no tokens on the ring")
