"""Overlay-granular lookup analysis.

The paper's routing layer resolves keys over the structured overlay
("routes messages directly to the closest node which has the desired ID
and matches the prefix ... The cost of routing is O(log n)"), and a
query is answered by the *first node on the overlay route that holds a
replica* — intermediate virtual nodes append themselves to the query.

The WAN-granular service model (``repro.core.traffic``) is what drives
every reproduced figure; this analyzer is the complementary diagnostic
at overlay granularity: given a live replica layout, how many overlay
hops does a lookup take before it meets a copy?  Replication shortens
lookups exactly as the paper describes — more copies means more chances
that the greedy route crosses one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.replicas import ReplicaMap
from ..errors import RingError
from .finger import FingerTable
from .hashring import HashRing
from .partition import PartitionMapper

__all__ = ["OverlayLookupStats", "OverlayAnalyzer"]


@dataclass(frozen=True)
class OverlayLookupStats:
    """Aggregate of a batch of overlay lookups."""

    mean_hops: float
    max_hops: int
    #: Fraction of lookups answered before reaching the key owner
    #: (a replica intercepted the route).
    intercepted_fraction: float
    lookups: int


class OverlayAnalyzer:
    """Overlay lookup-length analysis over a ring snapshot.

    Rebuild after membership changes — finger tables are a snapshot,
    exactly like a real node's routing state between stabilisation
    rounds.
    """

    def __init__(self, ring: HashRing, mapper: PartitionMapper) -> None:
        self._ring = ring
        self._mapper = mapper
        self._fingers = FingerTable(ring)
        # First token index per server, for gateway starts.
        self._token_of_server: dict[int, int] = {}
        for index, token in enumerate(ring.tokens()):
            self._token_of_server.setdefault(token.sid, index)

    # ------------------------------------------------------------------
    def lookup_hops(self, partition: int, start_sid: int, replicas: ReplicaMap) -> int:
        """Overlay hops from ``start_sid``'s first token until a server
        holding a copy of ``partition`` is visited.

        The key owner terminates the route regardless (the primary can
        always answer, possibly by holding the original).
        """
        try:
            start_index = self._token_of_server[start_sid]
        except KeyError:
            raise RingError(f"server {start_sid} has no tokens on the ring") from None
        holders = {sid for sid, _ in replicas.servers_with(partition)}
        route = self._fingers.route(self._mapper.key(partition), start_index)
        for hops, token in enumerate(route):
            if token.sid in holders:
                return hops
        return len(route) - 1  # answered by the key owner

    def survey(
        self,
        replicas: ReplicaMap,
        gateways: tuple[int, ...],
        partitions: tuple[int, ...] | None = None,
    ) -> OverlayLookupStats:
        """Look up every (partition, gateway) pair and aggregate.

        ``gateways`` are the client entry servers (e.g. one per
        datacenter); ``partitions`` defaults to all.
        """
        if not gateways:
            raise RingError("need at least one gateway server")
        if partitions is None:
            partitions = tuple(range(self._mapper.num_partitions))
        total_hops = 0
        max_hops = 0
        intercepted = 0
        count = 0
        for partition in partitions:
            owner = self._mapper.holder(partition)
            holders = {sid for sid, _ in replicas.servers_with(partition)}
            for gateway in gateways:
                hops = self.lookup_hops(partition, gateway, replicas)
                total_hops += hops
                max_hops = max(max_hops, hops)
                count += 1
                # Did a replica (not the ring owner) answer?
                route = self._fingers.route(
                    self._mapper.key(partition), self._token_of_server[gateway]
                )
                answered_by = next(
                    (t.sid for t in route if t.sid in holders), owner
                )
                if answered_by != owner:
                    intercepted += 1
        return OverlayLookupStats(
            mean_hops=total_hops / count,
            max_hops=max_hops,
            intercepted_fraction=intercepted / count,
            lookups=count,
        )
