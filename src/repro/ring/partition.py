"""Mapping data partitions to primary holders via the ring.

"Data is dynamically partitioned or stripped over the set of storage
hosts or physical nodes in the system" (Section II-B).  Each of the
Table-I partitions gets a stable key ``stable_hash(f"partition:{i}")``;
its primary holder is the ring owner of that key.  When membership
changes, only partitions whose owning arc moved change holder — the
minimal-disruption property the paper claims for virtual-node rings.
"""

from __future__ import annotations

from ..errors import RingError
from .hashring import HashRing
from .hashspace import stable_hash

__all__ = ["PartitionMapper"]


class PartitionMapper:
    """Stable partition keys + current holder resolution."""

    def __init__(self, num_partitions: int, ring: HashRing) -> None:
        if num_partitions < 1:
            raise RingError(f"num_partitions must be >= 1, got {num_partitions}")
        self._ring = ring
        self._keys: tuple[int, ...] = tuple(
            stable_hash(f"partition:{i}") for i in range(num_partitions)
        )

    @property
    def num_partitions(self) -> int:
        return len(self._keys)

    @property
    def ring(self) -> HashRing:
        return self._ring

    def key(self, partition: int) -> int:
        """Ring position of a partition's key."""
        if not 0 <= partition < len(self._keys):
            raise RingError(f"unknown partition: {partition}")
        return self._keys[partition]

    def holder(self, partition: int) -> int:
        """Server id currently owning the partition's key."""
        return self._ring.owner(self.key(partition))

    def holders(self) -> list[int]:
        """Current holder of every partition, index-aligned."""
        return [self._ring.owner(key) for key in self._keys]

    def successor_sites(self, partition: int, n: int) -> tuple[int, ...]:
        """First ``n`` distinct servers clockwise from the partition key.

        This is the Dynamo placement the paper's *random* baseline uses:
        "replicate data at the N-1 clockwise successor nodes".
        """
        return self._ring.successors(self.key(partition), n)

    def partitions_held_by(self, sid: int) -> tuple[int, ...]:
        """Partitions whose primary holder is ``sid``."""
        return tuple(
            p for p in range(len(self._keys)) if self._ring.owner(self._keys[p]) == sid
        )
