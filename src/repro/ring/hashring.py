"""Token ring: virtual-node positions with successor ownership.

Each physical server hosts a number of *tokens* (virtual nodes) at
pseudo-random positions; the owner of a key is the server of the first
token clockwise from the key ("the N-1 clockwise successor nodes" rule
of Dynamo starts from the same successor notion).  Token positions are
``stable_hash(f"server:{sid}:token:{k}")`` so the ring is a pure function
of membership — no RNG, no cross-process drift.

Join/leave disruption is minimal by construction and verified by tests:
adding a server only claims arcs from the tokens immediately clockwise
of the new tokens; removing one only cedes its own arcs ("node join and
departure only impacts its immediate neighbors", Section I).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import RingError
from .hashspace import stable_hash

__all__ = ["Token", "HashRing"]


@dataclass(frozen=True, order=True)
class Token:
    """One virtual node: a ring position owned by a server."""

    position: int
    sid: int
    index: int  # which of the server's tokens this is


class HashRing:
    """Sorted token ring with successor lookup and membership changes.

    Parameters
    ----------
    tokens_per_server:
        Virtual nodes per physical server ("a physical node hosts an
        amount of virtual nodes within its capacity limit").  More tokens
        smooth ownership imbalance; 8 is plenty for 100 servers.
    """

    def __init__(self, tokens_per_server: int = 8) -> None:
        if tokens_per_server < 1:
            raise RingError(f"tokens_per_server must be >= 1, got {tokens_per_server}")
        self._tokens_per_server = tokens_per_server
        self._positions: list[int] = []  # sorted, parallel to _tokens
        self._tokens: list[Token] = []
        self._members: set[int] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[int, ...]:
        """Sorted server ids currently on the ring."""
        return tuple(sorted(self._members))

    @property
    def num_tokens(self) -> int:
        return len(self._tokens)

    @property
    def tokens_per_server(self) -> int:
        return self._tokens_per_server

    def tokens(self) -> tuple[Token, ...]:
        """All tokens in position order."""
        return tuple(self._tokens)

    def _token_positions(self, sid: int) -> list[tuple[int, Token]]:
        out = []
        for k in range(self._tokens_per_server):
            position = stable_hash(f"server:{sid}:token:{k}")
            out.append((position, Token(position, sid, k)))
        return out

    def add_server(self, sid: int) -> None:
        """Join a server: insert its tokens.

        Raises :class:`RingError` on duplicate membership or on the
        (astronomically unlikely, but checked) position collision.
        """
        if sid in self._members:
            raise RingError(f"server {sid} is already on the ring")
        for position, token in self._token_positions(sid):
            idx = bisect.bisect_left(self._positions, position)
            if idx < len(self._positions) and self._positions[idx] == position:
                raise RingError(
                    f"token position collision at {position} between server "
                    f"{self._tokens[idx].sid} and server {sid}"
                )
            self._positions.insert(idx, position)
            self._tokens.insert(idx, token)
        self._members.add(sid)

    def remove_server(self, sid: int) -> None:
        """Leave/fail a server: drop its tokens."""
        if sid not in self._members:
            raise RingError(f"server {sid} is not on the ring")
        keep_positions: list[int] = []
        keep_tokens: list[Token] = []
        for position, token in zip(self._positions, self._tokens):
            if token.sid != sid:
                keep_positions.append(position)
                keep_tokens.append(token)
        self._positions = keep_positions
        self._tokens = keep_tokens
        self._members.discard(sid)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def successor_token(self, key: int) -> Token:
        """First token at or clockwise after ``key``."""
        if not self._tokens:
            raise RingError("the ring is empty")
        idx = bisect.bisect_left(self._positions, key)
        if idx == len(self._positions):
            idx = 0  # wrap around
        return self._tokens[idx]

    def owner(self, key: int) -> int:
        """Server id owning position ``key``."""
        return self.successor_token(key).sid

    def successors(self, key: int, n: int) -> tuple[int, ...]:
        """The first ``n`` *distinct servers* clockwise from ``key``.

        This is Dynamo's replica-site list: "replicate data at the N-1
        clockwise successor nodes" skips tokens of servers already in the
        list.  Returns fewer than ``n`` ids when the ring has fewer
        members.
        """
        if not self._tokens:
            raise RingError("the ring is empty")
        if n < 1:
            raise RingError(f"n must be >= 1, got {n}")
        out: list[int] = []
        idx = bisect.bisect_left(self._positions, key)
        for step in range(len(self._tokens)):
            token = self._tokens[(idx + step) % len(self._tokens)]
            if token.sid not in out:
                out.append(token.sid)
                if len(out) == n:
                    break
        return tuple(out)

    def ownership_fractions(self) -> dict[int, float]:
        """Fraction of the id space each member owns (sums to 1.0)."""
        if not self._tokens:
            raise RingError("the ring is empty")
        from .hashspace import HASH_SPACE_SIZE, ring_distance

        fractions: dict[int, float] = {sid: 0.0 for sid in self._members}
        n = len(self._tokens)
        for i, token in enumerate(self._tokens):
            prev_pos = self._positions[(i - 1) % n]
            arc = ring_distance(prev_pos, token.position)
            if n == 1:
                arc = HASH_SPACE_SIZE
            fractions[token.sid] += arc / HASH_SPACE_SIZE
        return fractions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(members={len(self._members)}, tokens={len(self._tokens)})"
