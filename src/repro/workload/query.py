"""The per-epoch query matrix.

All downstream maths (Eqs. 2–13) is expressed over ``q_ijt`` — "the
number of queries for a partition B_i, during a unit time period, from
requester j".  :class:`QueryBatch` is exactly that matrix for one epoch:
``counts[i, j]`` = queries for partition ``i`` raised near datacenter
``j`` ("we regard queries closest to datacenter j as from requester j").
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["QueryBatch"]


class QueryBatch:
    """Immutable (partitions x datacenters) query-count matrix for one epoch."""

    __slots__ = ("_counts", "_epoch")

    def __init__(self, epoch: int, counts: np.ndarray) -> None:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise WorkloadError(f"counts must be 2-D, got shape {counts.shape}")
        if counts.size == 0:
            raise WorkloadError("counts must be non-empty")
        if np.any(counts < 0):
            raise WorkloadError("query counts must be non-negative")
        if not np.issubdtype(counts.dtype, np.integer):
            if not np.all(counts == np.floor(counts)):
                raise WorkloadError("query counts must be integral")
            counts = counts.astype(np.int64)
        self._counts = counts.astype(np.int64, copy=True)
        self._counts.setflags(write=False)
        self._epoch = epoch

    @classmethod
    def from_trusted(cls, epoch: int, counts: np.ndarray) -> "QueryBatch":
        """Wrap a validated int64 matrix the caller owns, skipping checks.

        For generators only: ``counts`` must be a fresh 2-D non-negative
        int64 array with no other writable references.
        """
        batch = cls.__new__(cls)
        counts.setflags(write=False)
        batch._counts = counts
        batch._epoch = epoch
        return batch

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epoch this batch belongs to."""
        return self._epoch

    @property
    def counts(self) -> np.ndarray:
        """Read-only ``(P, D)`` count matrix (``q_ijt``)."""
        return self._counts

    @property
    def num_partitions(self) -> int:
        return self._counts.shape[0]

    @property
    def num_origins(self) -> int:
        return self._counts.shape[1]

    @property
    def total(self) -> int:
        """Total queries this epoch."""
        return int(self._counts.sum())

    def per_partition(self) -> np.ndarray:
        """Queries per partition, summed over origins (length P)."""
        return self._counts.sum(axis=1)

    def per_origin(self) -> np.ndarray:
        """Queries per origin datacenter, summed over partitions (length D)."""
        return self._counts.sum(axis=0)

    def system_average_query(self) -> np.ndarray:
        """Eq. 9: per-partition average over the N requesters,
        ``q̄_it = Σ_j q_ijt / N``."""
        return self._counts.sum(axis=1) / self._counts.shape[1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryBatch):
            return NotImplemented
        return self._epoch == other._epoch and np.array_equal(self._counts, other._counts)

    def __hash__(self) -> int:  # batches are value objects
        return hash((self._epoch, self._counts.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryBatch(epoch={self._epoch}, shape={self._counts.shape}, "
            f"total={self.total})"
        )
