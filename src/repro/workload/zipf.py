"""Truncated Zipf popularity weights.

The paper's motivation is hot partitions ("Datacenter A holds a hot
partition, which is frequently requested") and "Slashdot-effect" skew;
web-object popularity is classically Zipf-distributed.  We use a
truncated Zipf over the partition set: weight of rank ``r`` (1-based) is
``r^(-s)``, normalised.  Exponent 0 degenerates to uniform.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["zipf_weights", "rotate_ranks"]


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights for ``n`` items, hottest first.

    ``zipf_weights(n, 0.0)`` is exactly uniform; larger exponents
    concentrate mass on the first items.
    """
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise WorkloadError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def rotate_ranks(weights: np.ndarray, shift: int) -> np.ndarray:
    """Rotate which item is hottest (popularity-shift surges).

    Rank weights stay the same; item ``shift`` becomes the hottest, the
    previous hottest moves down.  Used by
    :class:`~repro.workload.patterns.PopularityShiftPattern` to model "a
    hot partition in Datacenter A may become cool while another cool
    partition ... becomes hot" (Section II-F).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise WorkloadError("weights must be a non-empty 1-D array")
    return np.roll(weights, shift % weights.size)
