"""Query origin/popularity patterns, including the paper's flash crowd.

A pattern answers two questions per epoch: how popular is each partition
(``partition_weights``) and where do queries come from
(``origin_weights``).  The generator samples the epoch's Poisson query
count into the outer product of the two weight vectors.

Patterns implemented:

* :class:`UniformPattern` — the evaluation's "random and even" setting;
* :class:`HotspotPattern` — static concentration of origins (Fig. 1's
  "80% of the queries are from the clients near to datacenters I, J and
  H");
* :class:`FlashCrowdPattern` — the exact four-stage schedule of
  Section III-A: each stage lasts a quarter of the run; 80 % of queries
  come from near H/I/J, then A/B/C, then E/F/G, then uniform;
* :class:`LocationShiftPattern` — Section II-F's first surge type: query
  origin drifts from one site to another over a transition window;
* :class:`PopularityShiftPattern` — Section II-F's second surge type:
  *which* partition is hot changes at scheduled epochs.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import WorkloadError
from .zipf import rotate_ranks, zipf_weights

__all__ = [
    "QueryPattern",
    "UniformPattern",
    "HotspotPattern",
    "FlashCrowdPattern",
    "LocationShiftPattern",
    "PopularityShiftPattern",
]


@runtime_checkable
class QueryPattern(Protocol):
    """What the generator needs from a workload pattern."""

    num_partitions: int
    num_origins: int

    def partition_weights(self, epoch: int) -> np.ndarray:
        """Probability over partitions at ``epoch`` (length P, sums to 1)."""
        ...

    def origin_weights(self, epoch: int) -> np.ndarray:
        """Probability over origin datacenters at ``epoch`` (length D)."""
        ...


def _concentrated(num_origins: int, hot: tuple[int, ...], share: float) -> np.ndarray:
    """Weight vector putting ``share`` of mass evenly on ``hot`` sites."""
    if not hot:
        raise WorkloadError("hot origin set must be non-empty")
    if not 0.0 < share <= 1.0:
        raise WorkloadError(f"share must be in (0, 1], got {share}")
    weights = np.zeros(num_origins, dtype=np.float64)
    for dc in hot:
        if not 0 <= dc < num_origins:
            raise WorkloadError(f"origin index out of range: {dc}")
        weights[dc] = share / len(hot)
    cold = num_origins - len(set(hot))
    if cold > 0:
        remainder = (1.0 - share) / cold
        for dc in range(num_origins):
            # Exact zero means "not a hot DC" (assigned above), a
            # sentinel, not a computed value.
            if weights[dc] == 0.0:  # repro: noqa[REP004]
                weights[dc] = remainder
    else:
        weights /= weights.sum()
    return weights


class _BasePattern:
    """Shared validation and Zipf caching."""

    def __init__(self, num_partitions: int, num_origins: int, zipf_exponent: float) -> None:
        if num_partitions < 1:
            raise WorkloadError(f"num_partitions must be >= 1, got {num_partitions}")
        if num_origins < 1:
            raise WorkloadError(f"num_origins must be >= 1, got {num_origins}")
        self.num_partitions = num_partitions
        self.num_origins = num_origins
        self._zipf = zipf_weights(num_partitions, zipf_exponent)

    def partition_weights(self, epoch: int) -> np.ndarray:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        return self._zipf


class UniformPattern(_BasePattern):
    """Random-and-even origins: every datacenter equally likely."""

    def origin_weights(self, epoch: int) -> np.ndarray:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        return np.full(self.num_origins, 1.0 / self.num_origins)


class HotspotPattern(_BasePattern):
    """Static origin concentration (Fig. 1's 80 %-from-H/I/J situation)."""

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        hot_origins: tuple[int, ...],
        hot_share: float = 0.8,
    ) -> None:
        super().__init__(num_partitions, num_origins, zipf_exponent)
        self._weights = _concentrated(num_origins, hot_origins, hot_share)
        self.hot_origins = tuple(hot_origins)
        self.hot_share = hot_share

    def origin_weights(self, epoch: int) -> np.ndarray:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        return self._weights


class FlashCrowdPattern(_BasePattern):
    """The four-stage flash crowd of Section III-A.

    "In the first stage, 80 % of queries are from areas near datacenters
    H, I and J.  And then dramatic change happens.  80 % of all queries
    are near datacenters A, B and C, in the second stage.  It moves to
    the areas near E, F and G in the third stage, and then becomes random
    and even distributed in the last stage."  Each stage lasts a quarter
    of ``total_epochs``.
    """

    #: Default stage origin sets, as datacenter indices of the default
    #: hierarchy (A=0 .. J=9).
    DEFAULT_STAGES: tuple[tuple[int, ...] | None, ...] = (
        (7, 8, 9),  # H, I, J
        (0, 1, 2),  # A, B, C
        (4, 5, 6),  # E, F, G
        None,  # uniform
    )

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        total_epochs: int,
        stages: tuple[tuple[int, ...] | None, ...] = DEFAULT_STAGES,
        hot_share: float = 0.8,
    ) -> None:
        super().__init__(num_partitions, num_origins, zipf_exponent)
        if total_epochs < len(stages):
            raise WorkloadError(
                f"total_epochs ({total_epochs}) must cover {len(stages)} stages"
            )
        self.total_epochs = total_epochs
        self.stages = tuple(stages)
        self._stage_weights = [
            np.full(num_origins, 1.0 / num_origins)
            if hot is None
            else _concentrated(num_origins, hot, hot_share)
            for hot in stages
        ]

    def stage_of(self, epoch: int) -> int:
        """Which stage an epoch falls in (clamped to the last stage)."""
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        stage_len = self.total_epochs / len(self.stages)
        return min(int(epoch / stage_len), len(self.stages) - 1)

    def stage_boundaries(self) -> tuple[int, ...]:
        """First epoch of each stage (useful for plotting/assertions)."""
        stage_len = self.total_epochs / len(self.stages)
        return tuple(int(round(k * stage_len)) for k in range(len(self.stages)))

    def origin_weights(self, epoch: int) -> np.ndarray:
        return self._stage_weights[self.stage_of(epoch)]


class LocationShiftPattern(_BasePattern):
    """Origin drifts linearly from one hot set to another (Section II-F).

    "Most of the queries ... may first come from Tokyo ... and then
    become very few.  At the same time, queries for the same partition,
    which come from Beijing ... is keeping increasing."
    """

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        from_origins: tuple[int, ...],
        to_origins: tuple[int, ...],
        shift_start: int,
        shift_end: int,
        hot_share: float = 0.8,
    ) -> None:
        super().__init__(num_partitions, num_origins, zipf_exponent)
        if shift_end <= shift_start:
            raise WorkloadError("shift_end must be after shift_start")
        self._from = _concentrated(num_origins, from_origins, hot_share)
        self._to = _concentrated(num_origins, to_origins, hot_share)
        self.shift_start = shift_start
        self.shift_end = shift_end

    def origin_weights(self, epoch: int) -> np.ndarray:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        if epoch <= self.shift_start:
            return self._from
        if epoch >= self.shift_end:
            return self._to
        frac = (epoch - self.shift_start) / (self.shift_end - self.shift_start)
        return (1.0 - frac) * self._from + frac * self._to


class PopularityShiftPattern(_BasePattern):
    """Which partition is hot rotates at scheduled epochs (Section II-F).

    At every epoch in ``shift_epochs`` the Zipf rank order rotates by
    ``rotate_by`` partitions, so the previously hot partition cools down
    and a previously cold one heats up, with origins staying put.
    """

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        shift_epochs: tuple[int, ...],
        rotate_by: int = 1,
        origin_pattern: QueryPattern | None = None,
    ) -> None:
        super().__init__(num_partitions, num_origins, zipf_exponent)
        if any(e < 0 for e in shift_epochs):
            raise WorkloadError("shift epochs must be >= 0")
        self.shift_epochs = tuple(sorted(shift_epochs))
        self.rotate_by = rotate_by
        self._origin_pattern = origin_pattern

    def partition_weights(self, epoch: int) -> np.ndarray:
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        shifts = sum(1 for e in self.shift_epochs if e <= epoch)
        return rotate_ranks(self._zipf, shifts * self.rotate_by)

    def origin_weights(self, epoch: int) -> np.ndarray:
        if self._origin_pattern is not None:
            return self._origin_pattern.origin_weights(epoch)
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        return np.full(self.num_origins, 1.0 / self.num_origins)
