"""Time-varying arrival-rate patterns (diurnal cycles, bursts).

The paper's motivation is rate irregularity — the "Slashdot effect",
"massive increase in traffic within a few minutes ... pass into silence
after peak time".  The evaluation itself holds λ constant; these
patterns extend the workload substrate with the two canonical
non-stationary shapes so downstream users can stress adaptive
replication the way production traffic does:

* :class:`DiurnalPattern` — a sinusoidal day/night cycle around the base
  rate (requests follow the sun);
* :class:`BurstyPattern` — scheduled multiplicative bursts ("Slashdot"
  spikes) on top of any base pattern.

A pattern may expose ``rate_multiplier(epoch)``; the generator scales
the Poisson mean by it (default 1.0 for patterns without one).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import WorkloadError
from .patterns import QueryPattern, UniformPattern

__all__ = ["DiurnalPattern", "BurstyPattern", "rate_multiplier_of"]


def rate_multiplier_of(pattern: QueryPattern, epoch: int) -> float:
    """The pattern's arrival-rate multiplier for an epoch (default 1.0)."""
    method = getattr(pattern, "rate_multiplier", None)
    if method is None:
        return 1.0
    value = float(method(epoch))
    if value < 0:
        raise WorkloadError(f"rate multiplier must be >= 0, got {value}")
    return value


class DiurnalPattern:
    """A day/night sinusoid over any base pattern.

    ``rate(t) = base_rate * (1 + amplitude * sin(2π t / period))`` —
    amplitude < 1 keeps the rate strictly positive.  With Table I's 10 s
    epochs a 24 h day is 8 640 epochs; the default period of 240 epochs
    is a compressed day so examples and tests see several cycles.
    """

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        period_epochs: int = 240,
        amplitude: float = 0.5,
        base: QueryPattern | None = None,
    ) -> None:
        if period_epochs < 2:
            raise WorkloadError(f"period must be >= 2 epochs, got {period_epochs}")
        if not 0.0 <= amplitude < 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1), got {amplitude}")
        self._base = (
            base
            if base is not None
            else UniformPattern(num_partitions, num_origins, zipf_exponent)
        )
        if self._base.num_partitions != num_partitions:
            raise WorkloadError("base pattern partition count mismatch")
        self.num_partitions = num_partitions
        self.num_origins = num_origins
        self.period_epochs = period_epochs
        self.amplitude = amplitude

    def partition_weights(self, epoch: int) -> np.ndarray:
        return self._base.partition_weights(epoch)

    def origin_weights(self, epoch: int) -> np.ndarray:
        return self._base.origin_weights(epoch)

    def rate_multiplier(self, epoch: int) -> float:
        """Sinusoidal day/night modulation."""
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        phase = 2.0 * math.pi * epoch / self.period_epochs
        return 1.0 + self.amplitude * math.sin(phase)


class BurstyPattern:
    """Scheduled multiplicative bursts over any base pattern.

    ``bursts`` maps ``(start_epoch, end_epoch)`` windows (half-open) to
    rate multipliers, e.g. ``{(100, 120): 4.0}`` quadruples traffic for
    20 epochs — the flash-crowd *rate* dimension the evaluation's
    constant-λ flash crowd deliberately leaves out.
    """

    def __init__(
        self,
        num_partitions: int,
        num_origins: int,
        zipf_exponent: float,
        bursts: dict[tuple[int, int], float],
        base: QueryPattern | None = None,
    ) -> None:
        for (start, end), factor in bursts.items():
            if start < 0 or end <= start:
                raise WorkloadError(f"invalid burst window ({start}, {end})")
            if factor < 0:
                raise WorkloadError(f"burst factor must be >= 0, got {factor}")
        self._base = (
            base
            if base is not None
            else UniformPattern(num_partitions, num_origins, zipf_exponent)
        )
        self.num_partitions = num_partitions
        self.num_origins = num_origins
        self.bursts = dict(bursts)

    def partition_weights(self, epoch: int) -> np.ndarray:
        return self._base.partition_weights(epoch)

    def origin_weights(self, epoch: int) -> np.ndarray:
        return self._base.origin_weights(epoch)

    def rate_multiplier(self, epoch: int) -> float:
        """Product of all burst windows covering the epoch."""
        if epoch < 0:
            raise WorkloadError(f"epoch must be >= 0, got {epoch}")
        factor = 1.0
        for (start, end), burst in self.bursts.items():
            if start <= epoch < end:
                factor *= burst
        return factor
