"""Workload trace record / replay.

Fair algorithm comparison (Figs. 3–9 plot all four algorithms on one
chart) requires every algorithm to see the *identical* query sequence.
:class:`WorkloadTrace` records generated batches once and replays them
through the same ``generate(epoch)`` interface, so an engine cannot tell
a trace from a live generator.  Traces round-trip through ``.npz`` files
for persistence.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..errors import WorkloadError
from .generator import QueryGenerator
from .query import QueryBatch

__all__ = ["WorkloadTrace"]


class WorkloadTrace:
    """An immutable, replayable sequence of :class:`QueryBatch` objects."""

    def __init__(self, batches: list[QueryBatch]) -> None:
        if not batches:
            raise WorkloadError("a trace needs at least one batch")
        for epoch, batch in enumerate(batches):
            if batch.epoch != epoch:
                raise WorkloadError(
                    f"batch at position {epoch} carries epoch {batch.epoch}"
                )
            if batch.counts.shape != batches[0].counts.shape:
                raise WorkloadError("all batches in a trace must share one shape")
        self._batches = tuple(batches)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def record(cls, generator: QueryGenerator, epochs: int) -> "WorkloadTrace":
        """Run a generator for ``epochs`` epochs and capture the output."""
        if epochs < 1:
            raise WorkloadError(f"epochs must be >= 1, got {epochs}")
        return cls([generator.generate(epoch) for epoch in range(epochs)])

    # ------------------------------------------------------------------
    # Replay interface (mirrors QueryGenerator)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._batches)

    @property
    def num_partitions(self) -> int:
        return self._batches[0].num_partitions

    @property
    def num_origins(self) -> int:
        return self._batches[0].num_origins

    def generate(self, epoch: int) -> QueryBatch:
        """Return the recorded batch for ``epoch``."""
        if not 0 <= epoch < len(self._batches):
            raise WorkloadError(
                f"trace covers epochs 0..{len(self._batches) - 1}, asked for {epoch}"
            )
        return self._batches[epoch]

    def batches(self) -> tuple[QueryBatch, ...]:
        return self._batches

    def total_queries(self) -> int:
        """Total queries over the whole trace."""
        return sum(batch.total for batch in self._batches)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | pathlib.Path) -> None:
        """Write the trace to an ``.npz`` file."""
        stacked = np.stack([batch.counts for batch in self._batches])
        np.savez_compressed(pathlib.Path(path), counts=stacked)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "WorkloadTrace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(pathlib.Path(path)) as data:
            if "counts" not in data:
                raise WorkloadError(f"{path} is not a workload trace file")
            stacked = data["counts"]
        if stacked.ndim != 3:
            raise WorkloadError(f"trace array must be 3-D, got shape {stacked.shape}")
        return cls([QueryBatch(epoch, stacked[epoch]) for epoch in range(stacked.shape[0])])
