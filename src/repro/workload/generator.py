"""Poisson query generation.

"At each epoch, the number of generated queries follows a Poisson
distribution with a mean rate λ" (Table I: λ = 300).  The epoch total is
drawn once from Poisson(λ) and then distributed multinomially over the
(partition x origin) cells weighted by the pattern's outer product — so
marginals follow the pattern exactly in expectation and all draws come
from one seeded stream.
"""

from __future__ import annotations

import numpy as np

from ..config import WorkloadParameters
from ..errors import WorkloadError
from .patterns import QueryPattern
from .query import QueryBatch
from .timevarying import rate_multiplier_of

__all__ = ["QueryGenerator"]


class QueryGenerator:
    """Samples one :class:`QueryBatch` per epoch.

    Epochs must be generated in order (0, 1, 2, ...) — the stream is
    consumed sequentially, which is what makes runs reproducible.  Use
    :class:`~repro.workload.trace.WorkloadTrace` to reuse one sampled
    workload across algorithm runs.
    """

    def __init__(
        self,
        params: WorkloadParameters,
        pattern: QueryPattern,
        rng: np.random.Generator,
    ) -> None:
        if pattern.num_partitions != params.num_partitions:
            raise WorkloadError(
                f"pattern covers {pattern.num_partitions} partitions, "
                f"params say {params.num_partitions}"
            )
        self._params = params
        self._pattern = pattern
        self._rng = rng
        self._next_epoch = 0
        # Joint-probability cache: stationary patterns return the same
        # weights every epoch, so the outer product and normalisation
        # can be reused whenever both weight vectors are unchanged.
        self._joint_cache: np.ndarray | None = None
        self._joint_part_w: np.ndarray | None = None
        self._joint_orig_w: np.ndarray | None = None

    @property
    def pattern(self) -> QueryPattern:
        return self._pattern

    @property
    def num_origins(self) -> int:
        return self._pattern.num_origins

    def generate(self, epoch: int) -> QueryBatch:
        """Sample the query matrix for ``epoch`` (must be the next epoch)."""
        if epoch != self._next_epoch:
            raise WorkloadError(
                f"epochs must be generated in order; expected {self._next_epoch}, got {epoch}"
            )
        self._next_epoch += 1
        part_w = np.asarray(self._pattern.partition_weights(epoch), dtype=np.float64)
        orig_w = np.asarray(self._pattern.origin_weights(epoch), dtype=np.float64)
        if part_w.shape != (self._params.num_partitions,):
            raise WorkloadError(f"bad partition weight shape: {part_w.shape}")
        if orig_w.shape != (self._pattern.num_origins,):
            raise WorkloadError(f"bad origin weight shape: {orig_w.shape}")
        if (
            self._joint_cache is not None
            and np.array_equal(part_w, self._joint_part_w)
            and np.array_equal(orig_w, self._joint_orig_w)
        ):
            joint = self._joint_cache
        else:
            joint = np.outer(part_w, orig_w).ravel()
            joint_sum = joint.sum()
            if not np.isfinite(joint_sum) or joint_sum <= 0:
                raise WorkloadError(
                    "pattern weights must sum to a positive finite value"
                )
            joint /= joint_sum
            self._joint_cache = joint
            self._joint_part_w = part_w.copy()
            self._joint_orig_w = orig_w.copy()
        rate = self._params.queries_per_epoch_mean * rate_multiplier_of(
            self._pattern, epoch
        )
        total = int(self._rng.poisson(rate))
        cells = self._rng.multinomial(total, joint)
        counts = cells.reshape(self._params.num_partitions, self._pattern.num_origins)
        return QueryBatch.from_trusted(epoch, counts)
