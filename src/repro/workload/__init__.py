"""Query-workload substrate (paper Section III-A).

"At each epoch, the number of generated queries follows a Poisson
distribution with a mean rate λ" (Table I: λ = 300).  Partition
popularity is Zipf-skewed (hot partitions) and query *origins* follow a
pattern: uniform ("random and even query rate") or the four-stage flash
crowd of the evaluation.

* :mod:`repro.workload.query` — the per-epoch query matrix;
* :mod:`repro.workload.zipf` — truncated Zipf popularity;
* :mod:`repro.workload.patterns` — origin/popularity patterns, including
  the exact flash-crowd staging of Section III-A;
* :mod:`repro.workload.generator` — Poisson sampling into query matrices;
* :mod:`repro.workload.trace` — record/replay so all four algorithms can
  be compared on *identical* query sequences.
"""

from .generator import QueryGenerator
from .patterns import (
    FlashCrowdPattern,
    HotspotPattern,
    LocationShiftPattern,
    PopularityShiftPattern,
    QueryPattern,
    UniformPattern,
)
from .query import QueryBatch
from .timevarying import BurstyPattern, DiurnalPattern
from .trace import WorkloadTrace
from .zipf import zipf_weights

__all__ = [
    "QueryBatch",
    "zipf_weights",
    "QueryPattern",
    "UniformPattern",
    "HotspotPattern",
    "FlashCrowdPattern",
    "LocationShiftPattern",
    "PopularityShiftPattern",
    "DiurnalPattern",
    "BurstyPattern",
    "QueryGenerator",
    "WorkloadTrace",
]
