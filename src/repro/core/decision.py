"""The RFH decision tree (paper Fig. 2), per virtual node.

"Every node is self-organized.  They replicate, migrate or choose to
suicide with a decentralized manner."  Each data partition is a virtual
node running this agent once per epoch:

1. **Availability branch** — "for each epoch, every node calculates
   availability according to (14).  If the minimum availability is not
   reached for a primary partition holder, it will replicate to its most
   forwarding nodes, even if all the nodes are not overloaded."
2. **Load branch** — the holder checks Eq. 12 (β-overload); forwarding
   nodes check Eq. 13 (γ-hub).  An overloaded holder picks among the
   ``hub_fanout`` (3) largest-traffic hubs; "if there's any replica of
   it not at these three nodes, it will check the migration condition
   according to (16) and sends a migration request to the node holding
   this replica.  Otherwise, it will replicate to the chosen traffic hub
   node."  When no forwarding hub qualifies but the holder is drowning,
   RFH replicates inside the holder's own datacenter — the paper
   observes exactly these same-DC replicas in its cost analysis
   ("some replicas are placed on the same datacenter of the primary
   partition holders, but in different servers").
3. **Suicide branch** — Eq. 15 (δ-cold) replicas "calculate the
   availability without [themselves].  If the minimum availability is
   still satisfied without it, it will commit suicide."

Pacing: at most one replicate-or-migrate plus one suicide per partition
per epoch — the paper's holder picks *a* node among the top hubs each
round, which is what makes Fig. 4's replica-count curves ramp over tens
of epochs instead of jumping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from ..config import RFHParameters
from ..sim.actions import Action, Migrate, Replicate, Suicide
from ..sim.observation import EpochObservation
from ..sim.reasons import (
    AVAILABILITY,
    COLD_REPLICA,
    HUB_MIGRATION,
    LOCAL_RELIEF,
    TRAFFIC_HUB,
)
from .traffic import _NULL_SPAN, _null_span

if TYPE_CHECKING:
    from ..obs.perf.counters import WorkCounters
    from ..obs.provenance.recorder import ProvenanceRecorder
    from ..obs.provenance.records import DecisionDraft
from .migration import (
    coldest_replica_dc,
    mean_partition_traffic,
    pick_hub_target,
    replica_sid_in_dc,
)
from .placement import choose_lowest_blocking
from .thresholds import (
    blocked_tolerance,
    is_blocked,
    is_holder_overloaded,
    is_suicide_candidate,
    is_traffic_hub,
    migration_benefit_met,
)

__all__ = ["AgeLookup", "RFHDecision"]


class AgeLookup(Protocol):
    """Replica-age source: a plain dict or a lazy view over birth records."""

    def get(self, key: tuple[int, int], default: int) -> int:
        """Age in epochs of replica ``(partition, sid)``, or ``default``."""
        ...

#: Anti-flapping deadband: a replica may only suicide while the holder's
#: smoothed traffic sits below this fraction of the Eq. 12 overload
#: threshold.  Without hysteresis the replicate/suicide pair limit-cycles
#: around the β boundary (kill a lightly-used replica → holder crosses β
#: → replicate → new surplus goes cold → kill ...).  0.5 gives a 2x gap
#: between the grow and shrink set-points; the ablation bench
#: ``bench_ablation_thresholds`` sweeps it.
SUICIDE_HEADROOM: float = 0.5

#: Absolute near-idle bar for suicide, in queries/epoch.  Eq. 15's
#: relative bar δ·q̄ can exceed a replica's whole contribution when q̄ is
#: large — killing a replica that still serves ~1 query/epoch in a
#: system with no spare capacity converts that service into blocked
#: queries, which re-triggers replication (a grow/shrink limit cycle).
#: A replica must be essentially idle, not merely below-average, to
#: reclaim itself.
SUICIDE_IDLE_BAR: float = 0.05

#: Epochs a replica must live before it may suicide.  A newborn's
#: served-EWMA starts at zero and needs ~2/alpha epochs to reflect its
#: real service level; without the warm-up, replicas created during a
#: load spike are reclaimed one epoch later and immediately re-created.
SUICIDE_WARMUP_EPOCHS: int = 25


class RFHDecision:
    """Stateless per-partition decision agent; all state is in the inputs."""

    def __init__(self, params: RFHParameters) -> None:
        self._params = params
        self._work: "WorkCounters | None" = None
        self._prov: "ProvenanceRecorder | None" = None
        self._span = _null_span
        # Hoisted once here rather than looked up per partition: span
        # timers are cached per name by the profiler.
        self._threshold_span = _NULL_SPAN

    def attach_perf(self, *, work: "WorkCounters | None" = None, span=None) -> None:
        """Opt into work counting and kernel spans (``repro.obs.perf``)."""
        self._work = work
        if span is not None:
            self._span = span
            self._threshold_span = span("threshold-checks")

    def attach_provenance(self, recorder: "ProvenanceRecorder | None") -> None:
        """Opt into decision-provenance recording (``repro.obs.provenance``).

        While attached, every ``decide_partition`` call opens a draft,
        records each threshold predicate and candidate it evaluates, and
        seals the draft into the recorder's ledger.  Detach with ``None``;
        the disabled path is a single ``is None`` check per site.
        """
        self._prov = recorder

    # ------------------------------------------------------------------
    def decide_partition(
        self,
        partition: int,
        obs: EpochObservation,
        avg_query: float,
        traffic_row: np.ndarray,
        holder_traffic: float,
        served_row: np.ndarray,
        unserved: float,
        replica_age: AgeLookup | None = None,
    ) -> list[Action]:
        """Run the Fig. 2 tree for one partition.

        Parameters
        ----------
        avg_query:
            Smoothed ``q̄_it`` (Eqs. 9–10) for this partition.
        traffic_row:
            Smoothed per-datacenter traffic ``tr_ikt`` (Eqs. 8, 11),
            length ``D``.
        holder_traffic:
            Smoothed ``tr_iit`` — traffic reaching the holder server
            itself (Eq. 12's left-hand side).
        served_row:
            Smoothed per-*server* served queries for this partition
            (length ``S``).  Eq. 15's suicide test is per *node*: an
            individual replica that no longer sees traffic must be able
            to reclaim itself even when its datacenter as a whole is
            busy (other replicas there absorb the arriving flow first).
        unserved:
            Smoothed blocked-query count for this partition; persistent
            blocking counts as overload regardless of Eq. 12 (see
            :data:`repro.core.thresholds.UNSERVED_TOLERANCE`).
        replica_age:
            Optional ``{(partition, sid): age_in_epochs}`` map; replicas
            younger than :data:`SUICIDE_WARMUP_EPOCHS` are exempt from
            the suicide branch (their served-EWMA is still warming up).
        """
        if self._work is not None:
            self._work.decisions_evaluated += 1
        replicas = obs.replicas
        if not replicas.has_holder(partition):
            return []  # lost partition: the engine restores it first
        holder_sid = replicas.holder(partition)
        holder_dc = obs.cluster.dc_of(holder_sid)
        layout_by_dc = replicas.replicas_by_dc(partition)
        replica_dcs = list(layout_by_dc)
        replica_count = replicas.replica_count(partition)

        draft = (
            None
            if self._prov is None
            else self._prov.open(
                epoch=obs.epoch,
                partition=partition,
                avg_query=avg_query,
                holder_traffic=holder_traffic,
                unserved=unserved,
                mean_traffic=mean_partition_traffic(traffic_row),
                replica_count=replica_count,
                rmin=obs.rmin,
                holder_dc=holder_dc,
            )
        )

        actions: list[Action] = []
        grow = self._growth_action(
            partition,
            obs,
            avg_query,
            traffic_row,
            holder_traffic,
            unserved,
            holder_sid,
            holder_dc,
            layout_by_dc,
            replica_dcs,
            replica_count,
            replica_age,
            draft,
        )
        if grow is not None:
            actions.append(grow)

        # Growth and shrinkage are exclusive branches of the Fig. 2 tree:
        # a partition that is still relieving load (or rebuilding its
        # availability floor) never reclaims replicas in the same epoch —
        # otherwise replicate/suicide chase each other forever.
        headroom_tol = SUICIDE_HEADROOM * blocked_tolerance(avg_query)
        relaxed = not is_holder_overloaded(
            holder_traffic, avg_query, self._params.beta * SUICIDE_HEADROOM
        )
        comfortable = unserved <= headroom_tol and relaxed
        if grow is None and draft is not None:
            draft.predicate(
                "headroom-blocked",
                f"partition:{partition}",
                unserved,
                headroom_tol,
                unserved <= headroom_tol,
            )
            draft.predicate(
                "headroom-load",
                f"partition:{partition}",
                holder_traffic,
                self._params.beta * SUICIDE_HEADROOM * avg_query,
                relaxed,
            )
        if grow is None and comfortable:
            shrink = self._suicide_action(
                partition,
                obs,
                avg_query,
                served_row,
                replica_count,
                replica_age,
                draft,
            )
            if shrink is not None:
                actions.append(shrink)
        if draft is not None and self._prov is not None:
            self._prov.close(draft, actions, dc_of=obs.cluster.dc_of)
        return actions

    # ------------------------------------------------------------------
    # Branch 1 + 2: replication / migration
    # ------------------------------------------------------------------
    def _growth_action(
        self,
        partition: int,
        obs: EpochObservation,
        avg_query: float,
        traffic_row: np.ndarray,
        holder_traffic: float,
        unserved: float,
        holder_sid: int,
        holder_dc: int,
        layout_by_dc: dict[int, list[tuple[int, int]]],
        replica_dcs: list[int],
        replica_count: int,
        replica_age: AgeLookup | None,
        draft: "DecisionDraft | None" = None,
    ) -> Action | None:
        params = self._params

        # --- availability branch (Eq. 14 floor) -----------------------
        floor_met = replica_count >= obs.rmin
        if draft is not None:
            draft.predicate(
                "eq14", f"partition:{partition}", replica_count, obs.rmin, floor_met
            )
        if not floor_met:
            if draft is not None:
                draft.branch = "availability"
            target = self._place_by_traffic(
                partition, obs, traffic_row, replica_dcs, prefer_new_dc=True,
                draft=draft,
            )
            if target is not None:
                return Replicate(partition, holder_sid, target, reason=AVAILABILITY)
            return None

        # --- load branch (Eqs. 12/13) ----------------------------------
        # Both the smoothed signal (Eq. 11 history) and the current raw
        # epoch must agree the holder is drowning: smoothing alone keeps
        # reporting overload for ~1/alpha epochs after relief arrives,
        # which over-builds by exactly that many replicas per partition.
        with self._threshold_span:
            raw_holder = float(obs.holder_traffic[partition])
            blocked = is_blocked(unserved, avg_query)
            threshold_hit = is_holder_overloaded(
                holder_traffic, avg_query, params.beta
            ) and is_holder_overloaded(raw_holder, avg_query, params.beta)
            overload = blocked or threshold_hit
            # Hub candidates are *nodes not holding the original
            # partition*; at our datacenter granularity that includes
            # the holder's own datacenter — its other servers are
            # forwarders sitting directly on every incoming path, which
            # is how the paper's same-DC replicas arise ("some replicas
            # are placed on the same datacenter of the primary
            # partition holders").
            # One vectorized Eq. 13 sweep over the datacenters: the
            # γ·q̄ bar is a single double and each lane runs the same
            # ``>=`` the scalar :func:`is_traffic_hub` call performs
            # (zero-demand pinned false first), so the candidate list
            # is element-for-element the per-dc loop's.
            if overload and avg_query > 0.0:
                hubs = np.nonzero(traffic_row >= params.gamma * avg_query)[
                    0
                ].tolist()
            else:
                hubs = []
        if draft is not None:
            beta_bar = params.beta * avg_query
            draft.predicate(
                "blocked",
                f"partition:{partition}",
                unserved,
                blocked_tolerance(avg_query),
                blocked,
            )
            draft.predicate(
                "eq12",
                f"server:{holder_sid}",
                holder_traffic,
                beta_bar,
                is_holder_overloaded(holder_traffic, avg_query, params.beta),
            )
            draft.predicate(
                "eq12-raw",
                f"server:{holder_sid}",
                raw_holder,
                beta_bar,
                is_holder_overloaded(raw_holder, avg_query, params.beta),
            )
            if overload:
                draft.branch = "load"
                gamma_bar = params.gamma * avg_query
                hub_set = set(hubs)
                for dc in range(obs.num_datacenters):
                    draft.candidate(
                        "hub",
                        dc,
                        cause="not-tried" if dc in hub_set else "below-gamma",
                        value=float(traffic_row[dc]),
                        threshold=gamma_bar,
                    )
        if not overload:
            return None
        if not hubs:
            # Overloaded with no qualifying forwarding hub: relieve locally.
            target = self._choose_server(partition, obs, holder_dc)
            if draft is not None:
                draft.candidate(
                    "local-relief",
                    holder_dc,
                    sid=-1 if target is None else target,
                    verdict="rejected" if target is None else "chosen",
                    cause="no-eligible-server" if target is None else "same-dc-relief",
                )
            if target is not None:
                return Replicate(partition, holder_sid, target, reason=LOCAL_RELIEF)
            return None

        top = sorted(hubs, key=lambda dc: (-float(traffic_row[dc]), dc))
        top = top[: params.hub_fanout]
        if draft is not None and len(hubs) > len(top):
            top_set = set(top)
            for dc in hubs:
                if dc not in top_set:
                    draft.resolve_candidate("hub", dc, "rejected", "outside-top-fanout")
        chosen_dc = pick_hub_target(top, traffic_row, replica_dcs)
        if chosen_dc is None:
            return None

        # Replicas parked outside the hot set are migration candidates —
        # but only on a genuine Eq. 12 threshold crossing (a capacity
        # shortfall is solved by adding copies, not by moving them) and
        # only for replicas old enough to have proven themselves cold.
        outside = [
            dc for dc in replica_dcs if dc != holder_dc and dc not in top
        ]
        if outside and threshold_hit:
            src_dc = coldest_replica_dc(traffic_row, outside)
            if src_dc is not None:
                mean_traffic = mean_partition_traffic(traffic_row)
                benefit = migration_benefit_met(
                    float(traffic_row[chosen_dc]),
                    float(traffic_row[src_dc]),
                    mean_traffic,
                    params.mu,
                )
                src_sid = replica_sid_in_dc(layout_by_dc, src_dc)
                mature = src_sid is not None and (
                    replica_age is None
                    or replica_age.get((partition, src_sid), SUICIDE_WARMUP_EPOCHS)
                    >= SUICIDE_WARMUP_EPOCHS
                )
                if draft is not None:
                    draft.predicate(
                        "eq16",
                        f"dc:{src_dc}->dc:{chosen_dc}",
                        float(traffic_row[chosen_dc]) - float(traffic_row[src_dc]),
                        params.mu * mean_traffic,
                        benefit,
                    )
                    if src_sid is not None:
                        age = (
                            SUICIDE_WARMUP_EPOCHS
                            if replica_age is None
                            else replica_age.get(
                                (partition, src_sid), SUICIDE_WARMUP_EPOCHS
                            )
                        )
                        draft.predicate(
                            "maturity",
                            f"server:{src_sid}",
                            age,
                            SUICIDE_WARMUP_EPOCHS,
                            mature,
                        )
                if benefit and mature and src_sid != holder_sid:
                    target = self._choose_server(
                        partition, obs, chosen_dc, exclude=(src_sid,)
                    )
                    if target is not None:
                        if draft is not None:
                            draft.candidate(
                                "migration-source",
                                src_dc,
                                sid=src_sid if src_sid is not None else -1,
                                verdict="chosen",
                                cause="coldest-outside-replica",
                                value=float(traffic_row[src_dc]),
                            )
                            draft.resolve_candidate(
                                "hub", chosen_dc, "chosen", "migration-destination"
                            )
                        return Migrate(
                            partition, src_sid, target, reason=HUB_MIGRATION
                        )
                    elif draft is not None:
                        draft.candidate(
                            "migration-source",
                            src_dc,
                            sid=src_sid if src_sid is not None else -1,
                            verdict="rejected",
                            cause="no-eligible-server",
                            value=float(traffic_row[src_dc]),
                        )
                elif draft is not None:
                    cause = (
                        "below-mu"
                        if not benefit
                        else ("warming-up" if not mature else "holder-replica")
                    )
                    draft.candidate(
                        "migration-source",
                        src_dc,
                        sid=src_sid if src_sid is not None else -1,
                        verdict="rejected",
                        cause=cause,
                        value=float(traffic_row[src_dc]),
                    )
        # Replicate into the chosen hub; if every eligible server there
        # already holds a copy, fall through the remaining top hubs in
        # preference order (fresh datacenters first, then traffic).
        replica_set = set(replica_dcs)
        fallbacks = sorted(
            top, key=lambda dc: (dc in replica_set, -float(traffic_row[dc]), dc)
        )
        ordered = [chosen_dc] + [dc for dc in fallbacks if dc != chosen_dc]
        for dc in ordered:
            target = self._choose_server(partition, obs, dc)
            if target is not None:
                if draft is not None:
                    draft.resolve_candidate(
                        "hub",
                        dc,
                        "chosen",
                        "preferred-hub" if dc == chosen_dc else "fallback-hub",
                    )
                return Replicate(partition, holder_sid, target, reason=TRAFFIC_HUB)
            if draft is not None:
                draft.resolve_candidate("hub", dc, "rejected", "no-eligible-server")
        return None

    # ------------------------------------------------------------------
    # Branch 3: suicide
    # ------------------------------------------------------------------
    def _suicide_action(
        self,
        partition: int,
        obs: EpochObservation,
        avg_query: float,
        served_row: np.ndarray,
        replica_count: int,
        replica_age: AgeLookup | None,
        draft: "DecisionDraft | None" = None,
    ) -> Suicide | None:
        floor_holds = replica_count - 1 >= obs.rmin
        if draft is not None:
            draft.predicate(
                "eq14-next",
                f"partition:{partition}",
                replica_count - 1,
                obs.rmin,
                floor_holds,
            )
        if not floor_holds:
            return None  # availability without the replica would fail
        params = self._params
        holder_sid = obs.replicas.holder(partition)
        if draft is None:
            candidates = [
                sid
                for sid, _count in obs.replicas.servers_with(partition)
                if sid != holder_sid
                and is_suicide_candidate(
                    float(served_row[sid]), avg_query, params.delta
                )
                and float(served_row[sid]) <= SUICIDE_IDLE_BAR
                and (
                    replica_age is None
                    or replica_age.get((partition, sid), SUICIDE_WARMUP_EPOCHS)
                    >= SUICIDE_WARMUP_EPOCHS
                )
            ]
        else:
            draft.branch = "suicide"
            delta_bar = params.delta * avg_query
            candidates = []
            for sid, _count in obs.replicas.servers_with(partition):
                if sid == holder_sid:
                    continue
                served = float(served_row[sid])
                if not is_suicide_candidate(served, avg_query, params.delta):
                    cause = "above-delta"
                elif served > SUICIDE_IDLE_BAR:
                    cause = "above-idle-bar"
                elif not (
                    replica_age is None
                    or replica_age.get((partition, sid), SUICIDE_WARMUP_EPOCHS)
                    >= SUICIDE_WARMUP_EPOCHS
                ):
                    cause = "warming-up"
                else:
                    candidates.append(sid)
                    continue  # verdict recorded once the coldest is known
                draft.candidate(
                    "suicide",
                    obs.cluster.dc_of(sid),
                    sid=sid,
                    cause=cause,
                    value=served,
                    threshold=delta_bar,
                )
        if not candidates:
            return None
        coldest = min(candidates, key=lambda sid: (float(served_row[sid]), sid))
        if draft is not None:
            for sid in candidates:
                draft.candidate(
                    "suicide",
                    obs.cluster.dc_of(sid),
                    sid=sid,
                    verdict="chosen" if sid == coldest else "rejected",
                    cause="coldest" if sid == coldest else "warmer-than-chosen",
                    value=float(served_row[sid]),
                    threshold=params.delta * avg_query,
                )
        return Suicide(partition, coldest, reason=COLD_REPLICA)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _choose_server(
        self,
        partition: int,
        obs: EpochObservation,
        dc: int,
        exclude: tuple[int, ...] = (),
    ) -> int | None:
        """Lowest-blocking eligible server in ``dc`` without a copy."""
        holding = {sid for sid, _ in obs.replicas.servers_with(partition)}
        holding.update(exclude)
        return choose_lowest_blocking(
            obs.cluster,
            dc,
            obs.blocking_probability,
            obs.partition_size_mb,
            self._params.phi,
            exclude=holding,
        )

    def _place_by_traffic(
        self,
        partition: int,
        obs: EpochObservation,
        traffic_row: np.ndarray,
        replica_dcs: list[int],
        prefer_new_dc: bool,
        draft: "DecisionDraft | None" = None,
    ) -> int | None:
        """Most-forwarding datacenter placement for the availability branch.

        Datacenters are tried by (no-replica-first if requested, traffic
        descending, index); the first one with an eligible server wins.
        """
        replica_set = set(replica_dcs)
        order = sorted(
            range(obs.num_datacenters),
            key=lambda dc: (
                (dc in replica_set) if prefer_new_dc else False,
                -float(traffic_row[dc]),
                dc,
            ),
        )
        for dc in order:
            target = self._choose_server(partition, obs, dc)
            if target is not None:
                if draft is not None:
                    draft.candidate(
                        "availability-target",
                        dc,
                        sid=target,
                        verdict="chosen",
                        cause="most-forwarding",
                        value=float(traffic_row[dc]),
                    )
                return target
            if draft is not None:
                draft.candidate(
                    "availability-target",
                    dc,
                    cause="no-eligible-server",
                    value=float(traffic_row[dc]),
                )
        return None
