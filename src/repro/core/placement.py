"""Server choice inside a datacenter (Eqs. 18–19).

Once an algorithm has picked a *datacenter* (traffic hub for RFH, owner
neighbour, requester site, or a random member), a concrete server must
be chosen.  RFH's rule (Section II-E): lowest blocking probability
(Eq. 18) among servers whose storage stays below the ``phi`` gate
(Eq. 19, default 70 %) — "thus, it can dynamically balance workload
among all the physical nodes".

The baselines use :func:`choose_random_server` with the same storage
gate, matching "the request-oriented algorithm employs random choosing
method, which is the same as the random algorithm" (Section II-H).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..cluster.cluster import Cluster

__all__ = ["eligible_servers", "choose_lowest_blocking", "choose_random_server"]


def eligible_servers(
    cluster: Cluster,
    dc: int,
    partition_size_mb: float,
    phi: float,
    exclude: Iterable[int] = (),
) -> list[int]:
    """Alive servers of ``dc`` that pass the Eq. 19 storage gate.

    ``exclude`` removes specific sids (e.g. the migration source or a
    server already holding the partition when diversity is wanted).
    Returned ascending by sid.
    """
    excluded = set(exclude)
    out = []
    for server in cluster.alive_in_dc(dc):
        if server.sid in excluded:
            continue
        if server.storage_gate_open(partition_size_mb, phi):
            out.append(server.sid)
    return out


def choose_lowest_blocking(
    cluster: Cluster,
    dc: int,
    blocking_probability: np.ndarray,
    partition_size_mb: float,
    phi: float,
    exclude: Iterable[int] = (),
) -> int | None:
    """RFH's choice: eligible server with the lowest Eq. 18 BP.

    Ties break by ascending sid for determinism.  Returns ``None`` when
    no server in the datacenter is eligible (caller falls back to its
    next-preferred datacenter).
    """
    candidates = eligible_servers(cluster, dc, partition_size_mb, phi, exclude)
    if not candidates:
        return None
    return min(candidates, key=lambda sid: (float(blocking_probability[sid]), sid))


def choose_random_server(
    cluster: Cluster,
    dc: int,
    rng: np.random.Generator,
    partition_size_mb: float,
    phi: float,
    exclude: Iterable[int] = (),
) -> int | None:
    """Baseline choice: uniform over eligible servers of the datacenter."""
    candidates = eligible_servers(cluster, dc, partition_size_mb, phi, exclude)
    if not candidates:
        return None
    return int(candidates[int(rng.integers(len(candidates)))])
