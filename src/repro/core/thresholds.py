"""The RFH threshold predicates (Eqs. 12, 13, 15, 16).

All four compare a node's (smoothed) traffic against the (smoothed)
system-average query rate ``q̄_it`` of Eqs. 9–10:

* **holder overload** (Eq. 12):  ``tr_iit ≥ β · q̄_it``  with β > 1 —
  the primary holder "enters a status waiting for replication requests";
* **traffic hub** (Eq. 13):  ``tr_ikt ≥ γ · q̄_it``  with γ > 1 — a
  forwarding node marks itself a hub and volunteers;
* **suicide** (Eq. 15):  ``tr_ikt ≤ δ · q̄_it``  with δ < 1 — a replica
  is barely visited and offers to reclaim itself;
* **migration benefit** (Eq. 16):  ``tr_ij − tr_ik ≥ μ · t̄r_i``  where
  ``t̄r_i`` is Eq. 17's average traffic over all nodes — move a replica
  from cold node *k* to hub *j* only when the gain clears the bar.

These are deliberately tiny pure functions: the decision tree composes
them, tests pin their boundary behaviour (all comparisons are inclusive
exactly as printed in the paper).
"""

from __future__ import annotations

__all__ = [
    "UNSERVED_TOLERANCE",
    "blocked_tolerance",
    "is_blocked",
    "is_holder_overloaded",
    "is_traffic_hub",
    "is_suicide_candidate",
    "migration_benefit_met",
]


#: Floor of the blocked-queries tolerance (queries/epoch).  See
#: :func:`is_blocked`.
UNSERVED_TOLERANCE: float = 0.5


def blocked_tolerance(avg_query: float) -> float:
    """Scale-aware blocked-queries tolerance for one partition.

    The tolerance tracks the partition's own query rate (half of Eq. 9's
    per-requester average, i.e. ~5 % of its total demand) with an
    absolute floor: hot partitions see Poisson swings of several queries
    per epoch that are not structural overload, while for cold
    partitions even one persistently blocked query is.
    """
    return max(UNSERVED_TOLERANCE, 0.5 * avg_query)


def is_blocked(unserved: float, avg_query: float) -> bool:
    """Persistent blocking counts as overload regardless of Eq. 12.

    The relative threshold β·q̄ can sit *above* the holder's physical
    capacity, in which case the excess would stay silently blocked
    forever — but a blocked query is the definition of an overloaded
    holder ("they could become overloaded and consequently cannot
    response to the clients within time limit", Section I).
    """
    return unserved > blocked_tolerance(avg_query)


def is_holder_overloaded(holder_traffic: float, avg_query: float, beta: float) -> bool:
    """Eq. 12: ``tr_iit ≥ β · q̄_it``, for partitions with demand.

    With ``q̄ = 0`` the printed inequality reads ``0 ≥ 0`` — vacuously
    true, declaring every never-queried partition permanently
    overloaded (and, via Eq. 13's identical degeneracy, every idle node
    a "hub").  Harmless at the paper's 64-partition scale where every
    partition sees traffic, but at 10⁵ partitions it makes the tree
    grow replicas for idle data forever.  A partition with no smoothed
    demand cannot be overloaded, so the zero case is pinned false.
    """
    return avg_query > 0.0 and holder_traffic >= beta * avg_query


def is_traffic_hub(node_traffic: float, avg_query: float, gamma: float) -> bool:
    """Eq. 13: ``tr_ikt ≥ γ · q̄_it``, for partitions with demand.

    Only meaningful for nodes *not* holding the original partition; the
    decision tree applies it to forwarding nodes.  As with Eq. 12, the
    ``q̄ = 0`` degeneracy (``0 ≥ 0``) is pinned false — a node that
    forwards no traffic for an idle partition is not a hub.
    """
    return avg_query > 0.0 and node_traffic >= gamma * avg_query


def is_suicide_candidate(node_traffic: float, avg_query: float, delta: float) -> bool:
    """Eq. 15: ``tr_ikt ≤ δ · q̄_it``.

    A true result is necessary but not sufficient for suicide — the
    availability floor without this replica must still hold (Fig. 2).
    """
    return node_traffic <= delta * avg_query


def migration_benefit_met(
    hub_traffic: float, replica_traffic: float, mean_traffic: float, mu: float
) -> bool:
    """Eq. 16: ``tr_ij − tr_ik ≥ μ · t̄r_i``.

    ``hub_traffic`` is the migration destination's traffic, and
    ``replica_traffic`` the current (cold) replica node's;
    ``mean_traffic`` is Eq. 17's all-node average for the partition.
    """
    return hub_traffic - replica_traffic >= mu * mean_traffic
