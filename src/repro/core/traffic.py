"""Traffic determination: the overflow recursion of Eqs. 2–8.

The model (Section II-C): a query for partition ``B_i`` raised near
datacenter ``j`` travels the routing path ``A_ij`` toward the partition
holder.  Every node on the path that hosts replicas of ``B_i`` absorbs
queries up to its processing capacity ``Σ_l C_ikl``; the remainder flows
on.  The *traffic* of node ``k`` is the flow arriving at it:

    tr_ijjt = q_ijt                                   (Eq. 5)
    tr_ijkt = max(0, tr_ijk't − Σ_l C_ik'l)            (Eqs. 2–4)

where ``k'`` is the node immediately before ``k``.  Eq. 8 sums over
requesters ``j`` with the path-membership indicator ``p_ijk``.

One refinement over the per-path closed form (documented in DESIGN.md):
capacity is a *shared* resource.  When flows from several requesters
cross one datacenter, Eq. 6 applied independently per path would let
each flow consume the same replicas.  We therefore process flows
level-synchronously (all first hops, then all second hops, ...) against
shared remaining capacities, in deterministic origin order — flows merge
at conjunction nodes exactly as physical queries would.

Everything the metrics need falls out of the same walk: per-server
served counts (utilization, Eq. 20; load imbalance, Eq. 24), per-DC
traffic (hub detection, Eqs. 12–13), unserved overflow, and lookup path
lengths (hops until a replica was hit).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimulationError
from ..net.routing import Router
from ..workload.query import QueryBatch

if TYPE_CHECKING:
    from ..obs.perf.counters import WorkCounters

__all__ = ["ServiceResult", "serve_epoch"]

#: Per-partition replica layout: ``{dc: [(sid, capacity_queries_per_epoch)]}``.
ReplicaLayout = Mapping[int, Sequence[tuple[int, float]]]


class _NullSpan:
    """Shared no-op context manager for un-profiled kernel spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def _null_span(name: str) -> _NullSpan:
    return _NULL_SPAN


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of routing one epoch's queries through the replica layout.

    Attributes
    ----------
    served_server:
        ``(P, S)``: queries of partition ``i`` served by server ``sid``.
    traffic_dc:
        ``(P, D)``: Eq. 8 traffic — the flow *arriving* at each
        datacenter for each partition (its own service not subtracted).
    unserved:
        Length ``P``: queries that overflowed every replica on their
        path, including the holder (blocked this epoch).
    holder_traffic:
        Length ``P``: the flow that reached the *holder server itself*
        (its served queries plus the unserved overflow).  This is the
        paper's ``tr_iit`` — traffic of the primary holder *node* — at
        server granularity: replicas co-located in the holder's
        datacenter intercept before the holder server, exactly like any
        other node earlier on the routing path, so placing copies near
        the holder genuinely relieves it (Eq. 12's feedback loop).
    hop_sum:
        Sum over all queries of the WAN hop count at which they were
        served (blocked queries are charged the full path length — they
        travelled it before being refused).
    distance_sum_km:
        Sum over all queries of the WAN distance (km) from their origin
        to the datacenter that served them (blocked queries are charged
        the full path distance).  Feeds the response-latency model in
        :mod:`repro.metrics.latency`.
    sla_miss:
        Queries that missed the SLA bound this epoch: every blocked
        query plus every served query whose modelled response time
        exceeded the bound.  0.0 when no latency model was supplied.
    query_count:
        Total queries routed (== ``queries.total``).
    """

    served_server: np.ndarray
    traffic_dc: np.ndarray
    unserved: np.ndarray
    holder_traffic: np.ndarray
    hop_sum: float
    distance_sum_km: float
    sla_miss: float
    query_count: int

    @property
    def per_server_load(self) -> np.ndarray:
        """Total queries served per server across partitions (length S)."""
        return self.served_server.sum(axis=0)

    @property
    def mean_path_length(self) -> float:
        """Average WAN hops per query (0.0 when the epoch had no queries)."""
        if self.query_count == 0:
            return 0.0
        return self.hop_sum / self.query_count

    @property
    def total_served(self) -> float:
        """Total queries actually served this epoch."""
        return float(self.served_server.sum())


def serve_epoch(
    queries: QueryBatch,
    holder_dc: Sequence[int | None],
    layouts: Sequence[ReplicaLayout],
    router: Router,
    num_servers: int,
    holder_sid: Sequence[int | None] | None = None,
    latency=None,
    work: "WorkCounters | None" = None,
    profiler=None,
) -> ServiceResult:
    """Route one epoch's query matrix and return the full service outcome.

    Parameters
    ----------
    queries:
        The epoch's ``q_ijt`` matrix.
    holder_dc:
        Per-partition datacenter of the primary holder; ``None`` marks a
        partition whose every copy is lost (all its queries fail).
    layouts:
        Per-partition replica capacity layout
        ``{dc: [(sid, capacity), ...]}``; within a datacenter servers are
        drained in the given order (callers pass sid-sorted lists, which
        keeps the walk deterministic).
    router:
        WAN shortest-path oracle.
    num_servers:
        Width of the served matrix (server columns).
    holder_sid:
        Per-partition server id of the primary holder.  When given, the
        holder server is drained *last* among its datacenter's replicas
        (co-located copies intercept first) and
        :attr:`ServiceResult.holder_traffic` reports the flow reaching
        it.  When omitted (pure-kernel unit tests), servers drain in the
        given order and ``holder_traffic`` is all zeros.
    latency:
        Optional :class:`~repro.metrics.latency.LatencyModel`; when
        given, SLA misses are accumulated exactly per absorbed flow
        (blocked queries always miss).
    work:
        Optional :class:`~repro.obs.perf.counters.WorkCounters`; counts
        partitions scanned (each partition with queries this epoch) and
        graph hops (path nodes visited while constructing flows).
    profiler:
        Optional profiler exposing ``span(name)``; the routing walk
        wraps flow construction in a ``"routing"`` span and the
        level-synchronous capacity walk in ``"overflow-recursion"``.
    """
    num_partitions = queries.num_partitions
    num_dcs = queries.num_origins
    if len(holder_dc) != num_partitions:
        raise SimulationError(
            f"holder_dc has {len(holder_dc)} entries for {num_partitions} partitions"
        )
    if len(layouts) != num_partitions:
        raise SimulationError(
            f"layouts has {len(layouts)} entries for {num_partitions} partitions"
        )

    served = np.zeros((num_partitions, num_servers), dtype=np.float64)
    traffic = np.zeros((num_partitions, num_dcs), dtype=np.float64)
    unserved = np.zeros(num_partitions, dtype=np.float64)
    holder_flow = np.zeros(num_partitions, dtype=np.float64)
    hop_sum = 0.0
    distance_sum = 0.0
    sla_miss = 0.0

    # Span timers are cached per name by the profiler, so look them up
    # once per epoch instead of twice per partition in the hot loop.
    span = profiler.span if profiler is not None else _null_span
    routing_span = span("routing")
    overflow_span = span("overflow-recursion")
    counts = queries.counts
    for partition in range(num_partitions):
        row = counts[partition]
        if not row.any():
            continue
        if work is not None:
            work.partitions_scanned += 1
        holder = holder_dc[partition]
        if holder is None:
            # Every copy lost: queries reach nothing and fail at distance 0.
            unserved[partition] = float(row.sum())
            sla_miss += float(row.sum()) if latency is not None else 0.0
            for origin in np.nonzero(row)[0]:
                traffic[partition, origin] += float(row[origin])
            continue
        sid = holder_sid[partition] if holder_sid is not None else None
        hops, kms, misses = _serve_partition(
            row,
            int(holder),
            layouts[partition],
            router,
            served[partition],
            traffic[partition],
            partition,
            unserved,
            sid,
            latency,
            work,
            routing_span,
            overflow_span,
        )
        hop_sum += hops
        distance_sum += kms
        sla_miss += misses
        if sid is not None:
            holder_flow[partition] = served[partition, sid] + unserved[partition]

    return ServiceResult(
        served_server=served,
        traffic_dc=traffic,
        unserved=unserved,
        holder_traffic=holder_flow,
        hop_sum=hop_sum,
        distance_sum_km=distance_sum,
        sla_miss=sla_miss,
        query_count=queries.total,
    )


def _serve_partition(
    row: np.ndarray,
    holder: int,
    layout: ReplicaLayout,
    router: Router,
    served_row: np.ndarray,
    traffic_row: np.ndarray,
    partition: int,
    unserved: np.ndarray,
    holder_sid: int | None,
    latency,
    work: "WorkCounters | None" = None,
    routing_span=_NULL_SPAN,
    overflow_span=_NULL_SPAN,
) -> tuple[float, float, float]:
    """Walk one partition's flows level-synchronously.

    Returns ``(hop_sum, distance_sum_km, sla_miss)`` for this partition.
    """
    # Shared remaining capacity per replica-holding server this epoch.
    remaining: dict[int, float] = {}
    dc_servers: dict[int, list[int]] = {}
    for dc, entries in layout.items():
        order: list[int] = []
        for sid, capacity in entries:
            if capacity < 0:
                raise SimulationError(
                    f"negative capacity {capacity} for server {sid}"
                )
            remaining[sid] = remaining.get(sid, 0.0) + float(capacity)
            order.append(sid)
        if holder_sid is not None and holder_sid in order:
            # The holder server is the path terminus: co-located replicas
            # intercept before it, so it drains last within its DC.
            order.remove(holder_sid)
            order.append(holder_sid)
        dc_servers[dc] = order

    # Flows: (origin, path, remaining_amount); origins in ascending order.
    flows: list[tuple[int, tuple[int, ...], float]] = []
    max_levels = 0
    hop_sum = 0.0
    distance_sum = 0.0
    sla_miss = 0.0
    with routing_span:
        for origin in np.nonzero(row)[0]:
            origin = int(origin)
            if not router.reachable(origin, holder):
                # A WAN partition separates the requester from the holder.
                # Replicas on the requester's side of the cut still serve
                # (nearest reachable replica datacenter first); the
                # remainder is blocked at the origin, at zero distance.
                amount = float(row[origin])
                traffic_row[origin] += amount
                for dc in sorted(
                    dc_servers, key=lambda d: (router.distance_km(origin, d), d)
                ):
                    if amount <= 0.0:
                        break
                    if dc != origin and not router.reachable(origin, dc):
                        continue
                    if dc != origin:
                        traffic_row[dc] += amount
                    hops = router.hop_count(origin, dc)
                    km = router.distance_km(origin, dc)
                    for sid in dc_servers[dc]:
                        if amount <= 0.0:
                            break
                        cap = remaining.get(sid, 0.0)
                        if cap <= 0.0:
                            continue
                        take = min(cap, amount)
                        remaining[sid] = cap - take
                        served_row[sid] += take
                        amount -= take
                        hop_sum += take * hops
                        distance_sum += take * km
                        if (
                            latency is not None
                            and latency.response_ms(km, hops) > latency.sla_ms
                        ):
                            sla_miss += take
                if amount > 0.0:
                    unserved[partition] += amount
                    if latency is not None:
                        sla_miss += amount  # blocked queries always miss
                continue
            path = router.path(origin, holder)
            if work is not None:
                work.graph_hops += len(path)
            flows.append((origin, path, float(row[origin])))
            max_levels = max(max_levels, len(path))
    amounts = [f[2] for f in flows]
    with overflow_span:
        for level in range(max_levels):
            for idx, (origin, path, _) in enumerate(flows):
                amount = amounts[idx]
                if amount <= 0.0 or level >= len(path):
                    continue
                dc = path[level]
                # Eq. 8's arriving-flow traffic, including the origin's own
                # full query load at level 0 (Eq. 5: tr_ijj = q_ij).
                traffic_row[dc] += amount
                for sid in dc_servers.get(dc, ()):
                    if amount <= 0.0:
                        break
                    cap = remaining.get(sid, 0.0)
                    if cap <= 0.0:
                        continue
                    take = min(cap, amount)
                    remaining[sid] = cap - take
                    served_row[sid] += take
                    amount -= take
                    hop_sum += take * level
                    km = router.distance_km(origin, dc)
                    distance_sum += take * km
                    if (
                        latency is not None
                        and latency.response_ms(km, level) > latency.sla_ms
                    ):
                        sla_miss += take
                if amount > 0.0 and level == len(path) - 1:
                    # Reached the holder and still overflowing: blocked.
                    unserved[partition] += amount
                    hop_sum += amount * level
                    distance_sum += amount * router.distance_km(origin, dc)
                    if latency is not None:
                        sla_miss += amount  # blocked queries always miss
                    amount = 0.0
                amounts[idx] = amount
    return hop_sum, distance_sum, sla_miss
