"""Traffic determination: the overflow recursion of Eqs. 2–8.

The model (Section II-C): a query for partition ``B_i`` raised near
datacenter ``j`` travels the routing path ``A_ij`` toward the partition
holder.  Every node on the path that hosts replicas of ``B_i`` absorbs
queries up to its processing capacity ``Σ_l C_ikl``; the remainder flows
on.  The *traffic* of node ``k`` is the flow arriving at it:

    tr_ijjt = q_ijt                                   (Eq. 5)
    tr_ijkt = max(0, tr_ijk't − Σ_l C_ik'l)            (Eqs. 2–4)

where ``k'`` is the node immediately before ``k``.  Eq. 8 sums over
requesters ``j`` with the path-membership indicator ``p_ijk``.

One refinement over the per-path closed form (documented in DESIGN.md):
capacity is a *shared* resource.  When flows from several requesters
cross one datacenter, Eq. 6 applied independently per path would let
each flow consume the same replicas.  We therefore process flows
level-synchronously (all first hops, then all second hops, ...) against
shared remaining capacities, in deterministic origin order — flows merge
at conjunction nodes exactly as physical queries would.

Everything the metrics need falls out of the same walk: per-server
served counts (utilization, Eq. 20; load imbalance, Eq. 24), per-DC
traffic (hub detection, Eqs. 12–13), unserved overflow, and lookup path
lengths (hops until a replica was hit).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimulationError
from ..net.routing import Router
from ..workload.query import QueryBatch

if TYPE_CHECKING:
    from ..obs.perf.counters import WorkCounters

__all__ = ["ServiceResult", "serve_epoch"]

#: Per-partition replica layout: ``{dc: [(sid, capacity_queries_per_epoch)]}``.
ReplicaLayout = Mapping[int, Sequence[tuple[int, float]]]


class _NullSpan:
    """Shared no-op context manager for un-profiled kernel spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def _null_span(name: str) -> _NullSpan:
    return _NULL_SPAN


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of routing one epoch's queries through the replica layout.

    Attributes
    ----------
    served_server:
        ``(P, S)``: queries of partition ``i`` served by server ``sid``.
    traffic_dc:
        ``(P, D)``: Eq. 8 traffic — the flow *arriving* at each
        datacenter for each partition (its own service not subtracted).
    unserved:
        Length ``P``: queries that overflowed every replica on their
        path, including the holder (blocked this epoch).
    holder_traffic:
        Length ``P``: the flow that reached the *holder server itself*
        (its served queries plus the unserved overflow).  This is the
        paper's ``tr_iit`` — traffic of the primary holder *node* — at
        server granularity: replicas co-located in the holder's
        datacenter intercept before the holder server, exactly like any
        other node earlier on the routing path, so placing copies near
        the holder genuinely relieves it (Eq. 12's feedback loop).
    hop_sum:
        Sum over all queries of the WAN hop count at which they were
        served (blocked queries are charged the full path length — they
        travelled it before being refused).
    distance_sum_km:
        Sum over all queries of the WAN distance (km) from their origin
        to the datacenter that served them (blocked queries are charged
        the full path distance).  Feeds the response-latency model in
        :mod:`repro.metrics.latency`.
    sla_miss:
        Queries that missed the SLA bound this epoch: every blocked
        query plus every served query whose modelled response time
        exceeded the bound.  0.0 when no latency model was supplied.
    query_count:
        Total queries routed (== ``queries.total``).
    """

    served_server: np.ndarray
    traffic_dc: np.ndarray
    unserved: np.ndarray
    holder_traffic: np.ndarray
    hop_sum: float
    distance_sum_km: float
    sla_miss: float
    query_count: int

    @property
    def per_server_load(self) -> np.ndarray:
        """Total queries served per server across partitions (length S)."""
        return self.served_server.sum(axis=0)

    @property
    def mean_path_length(self) -> float:
        """Average WAN hops per query (0.0 when the epoch had no queries)."""
        if self.query_count == 0:
            return 0.0
        return self.hop_sum / self.query_count

    @property
    def total_served(self) -> float:
        """Total queries actually served this epoch."""
        return float(self.served_server.sum())


def serve_epoch(
    queries: QueryBatch,
    holder_dc: Sequence[int | None],
    layouts: Sequence[ReplicaLayout],
    router: Router,
    num_servers: int,
    holder_sid: Sequence[int | None] | None = None,
    latency=None,
    work: "WorkCounters | None" = None,
    profiler=None,
) -> ServiceResult:
    """Route one epoch's query matrix and return the full service outcome.

    Parameters
    ----------
    queries:
        The epoch's ``q_ijt`` matrix.
    holder_dc:
        Per-partition datacenter of the primary holder; ``None`` marks a
        partition whose every copy is lost (all its queries fail).
    layouts:
        Per-partition replica capacity layout
        ``{dc: [(sid, capacity), ...]}``; within a datacenter servers are
        drained in the given order (callers pass sid-sorted lists, which
        keeps the walk deterministic).
    router:
        WAN shortest-path oracle.
    num_servers:
        Width of the served matrix (server columns).
    holder_sid:
        Per-partition server id of the primary holder.  When given, the
        holder server is drained *last* among its datacenter's replicas
        (co-located copies intercept first) and
        :attr:`ServiceResult.holder_traffic` reports the flow reaching
        it.  When omitted (pure-kernel unit tests), servers drain in the
        given order and ``holder_traffic`` is all zeros.
    latency:
        Optional :class:`~repro.metrics.latency.LatencyModel`; when
        given, SLA misses are accumulated exactly per absorbed flow
        (blocked queries always miss).
    work:
        Optional :class:`~repro.obs.perf.counters.WorkCounters`; counts
        partitions scanned (each partition with queries this epoch) and
        graph hops (path nodes visited while constructing flows).
    profiler:
        Optional profiler exposing ``span(name)``; the routing walk
        wraps flow construction in a ``"routing"`` span and the
        level-synchronous capacity walk in ``"overflow-recursion"``.
    """
    num_partitions = queries.num_partitions
    num_dcs = queries.num_origins
    if len(holder_dc) != num_partitions:
        raise SimulationError(
            f"holder_dc has {len(holder_dc)} entries for {num_partitions} partitions"
        )
    if len(layouts) != num_partitions:
        raise SimulationError(
            f"layouts has {len(layouts)} entries for {num_partitions} partitions"
        )

    served = np.zeros((num_partitions, num_servers), dtype=np.float64)
    traffic = np.zeros((num_partitions, num_dcs), dtype=np.float64)
    unserved = np.zeros(num_partitions, dtype=np.float64)
    holder_flow = np.zeros(num_partitions, dtype=np.float64)

    # Per-flow reduction terms: one slot per nonzero (partition, origin)
    # query cell, appended in walk order.  Each flow accumulates its own
    # hop/distance/SLA contributions in (level, slot) order and the
    # totals are reduced with a single ``np.sum`` over the finished
    # arrays.  The columnar engine follows the same contract — same
    # per-flow slots, same internal accumulation order, same final
    # reduction — so the two engines produce bit-identical totals even
    # though the columnar walk is scheduled very differently.
    flow_hops: list[float] = []
    flow_kms: list[float] = []
    flow_miss: list[float] = []

    # Span timers are cached per name by the profiler, so look them up
    # once per epoch instead of twice per partition in the hot loop.
    span = profiler.span if profiler is not None else _null_span
    routing_span = span("routing")
    overflow_span = span("overflow-recursion")
    counts = queries.counts
    for partition in range(num_partitions):
        row = counts[partition]
        if not row.any():
            continue
        if work is not None:
            work.partitions_scanned += 1
        holder = holder_dc[partition]
        if holder is None:
            # Every copy lost: queries reach nothing and fail at distance 0.
            unserved[partition] = float(row.sum())
            for origin in np.nonzero(row)[0]:
                traffic[partition, origin] += float(row[origin])
                flow_hops.append(0.0)
                flow_kms.append(0.0)
                flow_miss.append(
                    float(row[origin]) if latency is not None else 0.0
                )
            continue
        sid = holder_sid[partition] if holder_sid is not None else None
        _serve_partition(
            row,
            int(holder),
            layouts[partition],
            router,
            served[partition],
            traffic[partition],
            partition,
            unserved,
            sid,
            latency,
            work,
            routing_span,
            overflow_span,
            flow_hops,
            flow_kms,
            flow_miss,
        )
        if sid is not None:
            holder_flow[partition] = served[partition, sid] + unserved[partition]

    return ServiceResult(
        served_server=served,
        traffic_dc=traffic,
        unserved=unserved,
        holder_traffic=holder_flow,
        hop_sum=float(np.sum(np.asarray(flow_hops, dtype=np.float64))),
        distance_sum_km=float(np.sum(np.asarray(flow_kms, dtype=np.float64))),
        sla_miss=float(np.sum(np.asarray(flow_miss, dtype=np.float64))),
        query_count=queries.total,
    )


def _serve_partition(
    row: np.ndarray,
    holder: int,
    layout: ReplicaLayout,
    router: Router,
    served_row: np.ndarray,
    traffic_row: np.ndarray,
    partition: int,
    unserved: np.ndarray,
    holder_sid: int | None,
    latency,
    work: "WorkCounters | None" = None,
    routing_span=_NULL_SPAN,
    overflow_span=_NULL_SPAN,
    flow_hops: list[float] | None = None,
    flow_kms: list[float] | None = None,
    flow_miss: list[float] | None = None,
) -> None:
    """Walk one partition's flows level-synchronously.

    Appends one hop/distance/SLA reduction term per nonzero origin to
    ``flow_hops`` / ``flow_kms`` / ``flow_miss`` (see ``serve_epoch``).
    """
    if flow_hops is None:
        flow_hops = []
    if flow_kms is None:
        flow_kms = []
    if flow_miss is None:
        flow_miss = []
    # Shared remaining capacity per replica-holding server this epoch.
    remaining: dict[int, float] = {}
    dc_servers: dict[int, list[int]] = {}
    for dc, entries in layout.items():
        order: list[int] = []
        for sid, capacity in entries:
            if capacity < 0:
                raise SimulationError(
                    f"negative capacity {capacity} for server {sid}"
                )
            remaining[sid] = remaining.get(sid, 0.0) + float(capacity)
            order.append(sid)
        if holder_sid is not None and holder_sid in order:
            # The holder server is the path terminus: co-located replicas
            # intercept before it, so it drains last within its DC.
            order.remove(holder_sid)
            order.append(holder_sid)
        dc_servers[dc] = order

    # Flows: (origin, path, remaining_amount); origins in ascending order.
    flows: list[tuple[int, tuple[int, ...], float]] = []
    max_levels = 0
    with routing_span:
        for origin in np.nonzero(row)[0]:
            origin = int(origin)
            if not router.reachable(origin, holder):
                # A WAN partition separates the requester from the holder.
                # Replicas on the requester's side of the cut still serve
                # (nearest reachable replica datacenter first); the
                # remainder is blocked at the origin, at zero distance.
                amount = float(row[origin])
                hop_f = 0.0
                km_f = 0.0
                miss_f = 0.0
                traffic_row[origin] += amount
                for dc in sorted(
                    dc_servers, key=lambda d: (router.distance_km(origin, d), d)
                ):
                    if amount <= 0.0:
                        break
                    if dc != origin and not router.reachable(origin, dc):
                        continue
                    if dc != origin:
                        traffic_row[dc] += amount
                    hops = router.hop_count(origin, dc)
                    km = router.distance_km(origin, dc)
                    for sid in dc_servers[dc]:
                        if amount <= 0.0:
                            break
                        cap = remaining.get(sid, 0.0)
                        if cap <= 0.0:
                            continue
                        take = min(cap, amount)
                        remaining[sid] = cap - take
                        served_row[sid] += take
                        amount -= take
                        hop_f += take * hops
                        km_f += take * km
                        if (
                            latency is not None
                            and latency.response_ms(km, hops) > latency.sla_ms
                        ):
                            miss_f += take
                if amount > 0.0:
                    unserved[partition] += amount
                    if latency is not None:
                        miss_f += amount  # blocked queries always miss
                flow_hops.append(hop_f)
                flow_kms.append(km_f)
                flow_miss.append(miss_f)
                continue
            path = router.path(origin, holder)
            if work is not None:
                work.graph_hops += len(path)
            flows.append((origin, path, float(row[origin])))
            max_levels = max(max_levels, len(path))
    amounts = [f[2] for f in flows]
    f_hops = [0.0] * len(flows)
    f_kms = [0.0] * len(flows)
    f_miss = [0.0] * len(flows)
    with overflow_span:
        for level in range(max_levels):
            for idx, (origin, path, _) in enumerate(flows):
                amount = amounts[idx]
                if amount <= 0.0 or level >= len(path):
                    continue
                dc = path[level]
                # Eq. 8's arriving-flow traffic, including the origin's own
                # full query load at level 0 (Eq. 5: tr_ijj = q_ij).
                traffic_row[dc] += amount
                entry = amount
                for sid in dc_servers.get(dc, ()):
                    if amount <= 0.0:
                        break
                    cap = remaining.get(sid, 0.0)
                    if cap <= 0.0:
                        continue
                    take = min(cap, amount)
                    remaining[sid] = cap - take
                    served_row[sid] += take
                    amount -= take
                # One hop/distance/SLA term per (flow, level): everything
                # absorbed at this datacenter shares the same hop count
                # and origin distance, so the level's absorption is
                # charged with a single multiply-add (the columnar kernel
                # computes the identical ``entry - amount`` difference).
                absorbed = entry - amount
                f_hops[idx] += absorbed * level
                km = router.distance_km(origin, dc)
                f_kms[idx] += absorbed * km
                if (
                    latency is not None
                    and latency.response_ms(km, level) > latency.sla_ms
                ):
                    f_miss[idx] += absorbed
                if amount > 0.0 and level == len(path) - 1:
                    # Reached the holder and still overflowing: blocked.
                    unserved[partition] += amount
                    f_hops[idx] += amount * level
                    f_kms[idx] += amount * km
                    if latency is not None:
                        f_miss[idx] += amount  # blocked queries always miss
                    amount = 0.0
                amounts[idx] = amount
    flow_hops.extend(f_hops)
    flow_kms.extend(f_kms)
    flow_miss.extend(f_miss)
