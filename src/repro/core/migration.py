"""Migration planning helpers (Eqs. 16–17).

RFH migrates a replica only when the benefit clears a threshold:
"to guarantee enough benefit and avoid failure, a threshold of benefit
is set ... tr_ij − tr_ik ≥ μ · t̄r_i" (Eq. 16), where ``t̄r_i`` is the
average traffic over all nodes for the partition (Eq. 17).

The helpers here pick the *coldest* replica site as the migration source
and the best top-traffic hub as the destination; the decision tree in
:mod:`repro.core.decision` wires them together with the threshold
predicates.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["mean_partition_traffic", "coldest_replica_dc", "pick_hub_target", "replica_sid_in_dc"]


def mean_partition_traffic(traffic_row: np.ndarray) -> float:
    """Eq. 17: ``t̄r_i = Σ_j tr_ij / N`` over all datacenters."""
    return float(np.asarray(traffic_row, dtype=np.float64).mean())


def coldest_replica_dc(
    traffic_row: np.ndarray, replica_dcs: Iterable[int], exclude: Iterable[int] = ()
) -> int | None:
    """The replica-holding datacenter with the least traffic.

    ``exclude`` typically removes the holder's datacenter (the original
    copy never migrates) and the current top-traffic hubs (replicas
    already in the right place stay).  Ties break by datacenter index.
    Returns ``None`` when no candidate remains.
    """
    excluded = set(exclude)
    candidates = [dc for dc in replica_dcs if dc not in excluded]
    if not candidates:
        return None
    return min(candidates, key=lambda dc: (float(traffic_row[dc]), dc))


def pick_hub_target(
    hubs: Sequence[int],
    traffic_row: np.ndarray,
    replica_dcs: Iterable[int],
) -> int | None:
    """Choose the replication/migration destination among the top hubs.

    Preference order: hubs *without* a replica first (geographic spread
    buys interception coverage), then by descending traffic, then by
    index.  Returns ``None`` for an empty hub list.
    """
    if not hubs:
        return None
    replica_set = set(replica_dcs)
    return min(
        hubs,
        key=lambda dc: (dc in replica_set, -float(traffic_row[dc]), dc),
    )


def replica_sid_in_dc(
    layout_by_dc: Mapping[int, Sequence[tuple[int, int]]], dc: int
) -> int | None:
    """The lowest-sid server holding a copy inside ``dc`` (or ``None``).

    Used to resolve "the node holding this replica" once a source
    datacenter has been picked.
    """
    entries = layout_by_dc.get(dc)
    if not entries:
        return None
    return entries[0][0]  # entries are sid-sorted by ReplicaMap
