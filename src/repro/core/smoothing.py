"""Exponentially-weighted moving averages (Eqs. 10–11).

"In order to compensate for steep changes of the query rate, we take
historical data into account and use a smoothing factor α":

    q̄_it  = α · q̄_i(t−1)  + (1 − α) · q_it      (Eq. 10, as printed)

**Convention note** (recorded in DESIGN.md): read literally, the printed
update with Table I's α = 0.2 weights the *newest* sample 80 % — it
barely "compensates for steep changes" at all, and at the paper's
per-partition query rates of O(1) query/epoch it leaves every threshold
comparison (Eqs. 12/13/15) noise-dominated, which contradicts the smooth
replica-count trajectories of Figs. 4 and 10.  The standard EWMA
convention — α as the weight of the *new* sample,

    x_t = (1 − α) · x_{t−1} + α · x_raw

— matches both the stated intent and the observed dynamics, so that is
what :class:`Ewma` implements: ``alpha`` is the new-sample weight, and
Table I's 0.2 yields history-heavy smoothing.  The first update
initialises the state to the raw value (no cold-start bias toward zero).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Ewma"]


class Ewma:
    """EWMA over a scalar or fixed-shape array stream.

    Examples
    --------
    >>> s = Ewma(alpha=0.2)
    >>> s.update(10.0)
    10.0
    >>> s.update(0.0)          # (1 - 0.2) * 10 + 0.2 * 0
    8.0
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self._alpha = float(alpha)
        self._value: np.ndarray | float | None = None

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def initialized(self) -> bool:
        """Whether at least one update has been applied."""
        return self._value is not None

    @property
    def value(self) -> np.ndarray | float:
        """The current smoothed value.

        Raises ``ValueError`` before the first update — callers should
        not read a smoothed signal that does not exist yet.
        """
        if self._value is None:
            raise ValueError("Ewma has not been updated yet")
        return self._value

    def update(self, raw: np.ndarray | float) -> np.ndarray | float:
        """Fold one raw observation in; returns the new smoothed value.

        Array returns are defensive copies — mutating one never touches
        the smoothing state.
        """
        if isinstance(raw, np.ndarray):
            if self._value is None:
                self._value = raw.astype(np.float64, copy=True)
            elif not isinstance(self._value, np.ndarray):
                raise ValueError("Ewma updates must keep a consistent type")
            elif raw.shape != self._value.shape:
                raise ValueError(
                    f"Ewma shape changed from {self._value.shape} to {raw.shape}"
                )
            else:
                # ``alpha * raw`` promotes any integer input to float64
                # with the same values an explicit astype would produce.
                self._value = (1.0 - self._alpha) * self._value + self._alpha * raw
            return self._value.copy()
        raw = float(raw)
        if self._value is None:
            self._value = raw
        elif isinstance(self._value, np.ndarray):
            raise ValueError("Ewma updates must keep a consistent type")
        else:
            self._value = (1.0 - self._alpha) * self._value + self._alpha * raw
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None
