"""The engine-facing RFH algorithm.

:class:`RFHPolicy` owns the smoothing state of Eqs. 10–11 (each virtual
node "periodically calculates its traffic load" against history) and
runs the Fig. 2 decision tree for every partition each epoch.  It is the
``"rfh"`` entry of the four-algorithm comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import RFHParameters
from ..sim.actions import Action
from ..sim.observation import EpochObservation
from .decision import RFHDecision
from .smoothing import Ewma
from .traffic import _null_span

if TYPE_CHECKING:
    from ..obs.perf.counters import WorkCounters

__all__ = ["RFHPolicy"]


class RFHPolicy:
    """Resilient, Fault-tolerant, High-efficient replication (the paper)."""

    name = "rfh"

    def __init__(self, params: RFHParameters | None = None) -> None:
        self._params = params if params is not None else RFHParameters()
        self._avg_query = Ewma(self._params.alpha)  # Eq. 10, per partition
        self._traffic = Ewma(self._params.alpha)  # Eq. 11, per (partition, dc)
        self._holder_traffic = Ewma(self._params.alpha)  # Eq. 11 at the holder
        self._unserved = Ewma(self._params.alpha)  # blocked-query signal
        # Per-(partition, server) served EWMA, kept by hand because the
        # server axis can grow when nodes join mid-run.
        self._served: np.ndarray | None = None
        # Birth epoch of replicas this policy created, for the suicide
        # warm-up exemption.
        self._birth: dict[tuple[int, int], int] = {}
        self._decision = RFHDecision(self._params)
        # Perf instrumentation (opt-in via attach_perf): a kernel-span
        # factory and the shared work counters.
        self._span = _null_span

    @property
    def params(self) -> RFHParameters:
        return self._params

    def attach_perf(self, *, profiler=None, work: "WorkCounters | None" = None) -> None:
        """Opt into perf observability (``repro.obs.perf``).

        ``profiler`` (when it supports spans) times the EWMA-smoothing
        and decision-evaluation kernels; ``work`` counts decisions
        evaluated.  Called by the engine when either is attached.
        """
        if profiler is not None and getattr(profiler, "supports_spans", False):
            self._span = profiler.span
        self._decision.attach_perf(work=work, span=self._span)

    def attach_provenance(self, recorder) -> None:
        """Opt into decision-provenance recording (``repro.obs.provenance``)."""
        self._decision.attach_provenance(recorder)

    def decide(self, obs: EpochObservation) -> list[Action]:
        """Run the decision tree over all partitions for one epoch."""
        with self._span("ewma-smoothing"):
            avg_query = np.asarray(self._avg_query.update(obs.system_average_query()))
            traffic = np.asarray(self._traffic.update(obs.traffic_dc))
            holder_traffic = np.asarray(
                self._holder_traffic.update(obs.holder_traffic)
            )
            unserved = np.asarray(self._unserved.update(obs.unserved))
            served = self._update_served(obs.served_server)
        age = {key: obs.epoch - born for key, born in self._birth.items()}
        actions: list[Action] = []
        with self._span("decision-eval"):
            for partition in range(obs.num_partitions):
                actions.extend(
                    self._decision.decide_partition(
                        partition,
                        obs,
                        float(avg_query[partition]),
                        traffic[partition],
                        float(holder_traffic[partition]),
                        served[partition],
                        float(unserved[partition]),
                        replica_age=age,
                    )
                )
        self._record_births(obs.epoch, actions)
        return actions

    def _record_births(self, epoch: int, actions: list[Action]) -> None:
        """Track creation epochs of replicas this policy just placed."""
        from ..sim.actions import Migrate, Replicate, Suicide

        for action in actions:
            if isinstance(action, Replicate):
                self._birth[(action.partition, action.target_sid)] = epoch
            elif isinstance(action, Migrate):
                self._birth[(action.partition, action.target_sid)] = epoch
                self._birth.pop((action.partition, action.source_sid), None)
            elif isinstance(action, Suicide):
                self._birth.pop((action.partition, action.sid), None)

    def _update_served(self, raw: np.ndarray) -> np.ndarray:
        """EWMA of the (P, S) served matrix, padding on server growth."""
        alpha = self._params.alpha
        if self._served is None:
            self._served = raw.astype(np.float64, copy=True)
        else:
            if raw.shape[1] > self._served.shape[1]:
                grown = np.zeros_like(raw, dtype=np.float64)
                grown[:, : self._served.shape[1]] = self._served
                self._served = grown
            self._served = (1.0 - alpha) * self._served + alpha * raw
        return self._served
