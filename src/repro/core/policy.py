"""The engine-facing RFH algorithm.

:class:`RFHPolicy` owns the smoothing state of Eqs. 10–11 (each virtual
node "periodically calculates its traffic load" against history) and
runs the Fig. 2 decision tree for every partition each epoch.  It is the
``"rfh"`` entry of the four-algorithm comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import RFHParameters
from ..sim.actions import Action
from ..sim.observation import EpochObservation
from .decision import (
    SUICIDE_HEADROOM,
    SUICIDE_IDLE_BAR,
    RFHDecision,
)
from .smoothing import Ewma
from .thresholds import UNSERVED_TOLERANCE
from .traffic import _null_span

if TYPE_CHECKING:
    from ..obs.perf.counters import WorkCounters
    from ..sim.columnar.state import SimState

__all__ = ["RFHPolicy", "ReplicaAges"]


class ReplicaAges:
    """Lazy ``(partition, sid) → age-in-epochs`` view of the birth ledger.

    The decision tree only ever looks up replicas of the partition it is
    evaluating, so resolving ages on demand (instead of materialising a
    dict over every recorded birth each epoch) returns the identical
    values at O(lookups) cost.
    """

    __slots__ = ("_birth", "_epoch")

    def __init__(self, birth: dict[int, dict[int, int]], epoch: int) -> None:
        self._birth = birth
        self._epoch = epoch

    def get(self, key: tuple[int, int], default: int) -> int:
        by_sid = self._birth.get(key[0])
        if by_sid is None:
            return default
        born = by_sid.get(key[1])
        return default if born is None else self._epoch - born


class RFHPolicy:
    """Resilient, Fault-tolerant, High-efficient replication (the paper)."""

    name = "rfh"

    def __init__(self, params: RFHParameters | None = None) -> None:
        self._params = params if params is not None else RFHParameters()
        self._avg_query = Ewma(self._params.alpha)  # Eq. 10, per partition
        self._holder_traffic = Ewma(self._params.alpha)  # Eq. 11 at the holder
        self._unserved = Ewma(self._params.alpha)  # blocked-query signal
        # The two matrix-shaped EWMAs — Eq. 11's (partition, dc) traffic
        # and the per-(partition, server) served signal — are kept by
        # hand: updated in place with a reused scratch buffer (the same
        # per-element multiply/add sequence :class:`Ewma` performs, so
        # values stay bit-identical) because at scale the defensive
        # copies would dominate the epoch.  The server axis can also
        # grow when nodes join mid-run.
        self._traffic: np.ndarray | None = None  # Eq. 11, per (partition, dc)
        self._traffic_scratch: np.ndarray | None = None
        self._served: np.ndarray | None = None
        self._served_scratch: np.ndarray | None = None
        # Birth epoch of replicas this policy created, for the suicide
        # warm-up exemption, indexed partition → {sid: epoch} so the age
        # view can be built only for the partitions under evaluation.
        self._birth: dict[int, dict[int, int]] = {}
        self._decision = RFHDecision(self._params)
        # Perf instrumentation (opt-in via attach_perf): a kernel-span
        # factory and the shared work counters.
        self._span = _null_span
        self._work: WorkCounters | None = None
        # Columnar decision prefilter (opt-in via attach_columnar_state):
        # with a dense replica mirror available, partitions that provably
        # take no branch of the Fig. 2 tree are skipped in bulk.  Scalar
        # runs never attach one, so the reference loop stays untouched.
        self._columnar_state: SimState | None = None
        self._provenance_attached = False
        self._arange_servers = np.zeros(0, dtype=np.int64)

    @property
    def params(self) -> RFHParameters:
        return self._params

    def attach_perf(self, *, profiler=None, work: "WorkCounters | None" = None) -> None:
        """Opt into perf observability (``repro.obs.perf``).

        ``profiler`` (when it supports spans) times the EWMA-smoothing
        and decision-evaluation kernels; ``work`` counts decisions
        evaluated.  Called by the engine when either is attached.
        """
        if profiler is not None and getattr(profiler, "supports_spans", False):
            self._span = profiler.span
        self._work = work
        self._decision.attach_perf(work=work, span=self._span)

    def attach_provenance(self, recorder) -> None:
        """Opt into decision-provenance recording (``repro.obs.provenance``)."""
        self._decision.attach_provenance(recorder)
        # Drafts open per evaluated partition, so the prefilter must not
        # skip any while a recorder is attached (ledger completeness).
        self._provenance_attached = recorder is not None

    def attach_columnar_state(self, state: "SimState") -> None:
        """Opt into the columnar decision prefilter (``repro.sim.columnar``)."""
        self._columnar_state = state

    def decide(self, obs: EpochObservation) -> list[Action]:
        """Run the decision tree over all partitions for one epoch."""
        with self._span("ewma-smoothing"):
            avg_query = np.asarray(self._avg_query.update(obs.system_average_query()))
            traffic = self._update_traffic(obs.traffic_dc)
            holder_traffic = np.asarray(
                self._holder_traffic.update(obs.holder_traffic)
            )
            unserved = np.asarray(self._unserved.update(obs.unserved))
            served = self._update_served(obs.served_server)
        actions: list[Action] = []
        with self._span("decision-eval"):
            partitions = self._decision_partitions(
                obs, avg_query, holder_traffic, unserved, served
            )
            age = self._replica_ages(obs.epoch)
            for partition in partitions:
                actions.extend(
                    self._decision.decide_partition(
                        partition,
                        obs,
                        float(avg_query[partition]),
                        traffic[partition],
                        float(holder_traffic[partition]),
                        served[partition],
                        float(unserved[partition]),
                        replica_age=age,
                    )
                )
        self._record_births(obs.epoch, actions)
        return actions

    def _decision_partitions(
        self,
        obs: EpochObservation,
        avg_query: np.ndarray,
        holder_traffic: np.ndarray,
        unserved: np.ndarray,
        served: np.ndarray,
    ) -> "range | list[int]":
        """Partitions the decision tree must visit this epoch, in order.

        Without a columnar mirror (or with provenance attached) this is
        every partition — the scalar reference behaviour.  With one, a
        conservative vectorized evaluation of the Fig. 2 predicates
        skips partitions that provably return no action: availability
        floor met, holder neither blocked nor past Eq. 12 on both the
        smoothed and raw signal, and no replica that could clear the
        suicide gates.  Every comparison below is the same IEEE-754
        operation the scalar tree performs on the same float64 values,
        so a skipped partition is exactly one whose evaluation would be
        a no-op; skipped evaluations are re-credited to the
        ``decisions_evaluated`` work counter in bulk.
        """
        state = self._columnar_state
        num_servers = served.shape[1]
        if (
            state is None
            or self._provenance_attached
            or state.num_servers != num_servers
        ):
            return range(obs.num_partitions)
        params = self._params
        tol = np.maximum(UNSERVED_TOLERANCE, 0.5 * avg_query)
        blocked = unserved > tol
        # Eq. 12's zero-demand guard (see thresholds.is_holder_overloaded):
        # q̄ = 0 pins the overload comparison false, element-wise here.
        demand = avg_query > 0.0
        beta_bar = params.beta * avg_query
        raw_holder = obs.holder_traffic
        threshold_hit = (
            demand & (holder_traffic >= beta_bar) & (raw_holder >= beta_bar)
        )
        overload = blocked | threshold_hit
        relaxed_bar = (params.beta * SUICIDE_HEADROOM) * avg_query
        comfortable = (unserved <= SUICIDE_HEADROOM * tol) & ~(
            demand & (holder_traffic >= relaxed_bar)
        )
        # A suicide is only *possible* when some non-holder replica sits
        # under both the Eq. 15 bar and the idle bar (age is checked in
        # the tree itself — ignoring it here only costs an evaluation).
        # The per-server scan runs only on rows that already cleared the
        # comfortable/floor gates — the candidate predicate is pure and
        # elementwise, so restricting its evaluation changes nothing.
        counts = state.replica_counts()
        shrinkable = comfortable & (counts - 1 >= obs.rmin)
        may_shrink = shrinkable
        rows = np.nonzero(shrinkable)[0]
        if rows.shape[0]:
            arange = self._arange_servers
            if arange.shape[0] != num_servers:
                arange = np.arange(num_servers)
                self._arange_servers = arange
            delta_bar = params.delta * avg_query
            served_rows = served[rows]
            candidate_rows = (
                (state.R[rows] > 0)
                & (arange[None, :] != state.holder[rows, None])
                & (served_rows <= delta_bar[rows, None])
                & (served_rows <= SUICIDE_IDLE_BAR)
            ).any(axis=1)
            may_shrink = np.zeros(counts.shape[0], dtype=bool)
            may_shrink[rows] = candidate_rows
        skip = (
            (state.holder >= 0)
            & (counts >= obs.rmin)
            & ~overload
            & ~may_shrink
        )
        if self._work is not None:
            self._work.decisions_evaluated += int(np.count_nonzero(skip))
        return np.nonzero(~skip)[0].tolist()

    def _replica_ages(self, epoch: int) -> ReplicaAges:
        """Age view of policy-placed replicas, resolved on lookup."""
        return ReplicaAges(self._birth, epoch)

    def _record_births(self, epoch: int, actions: list[Action]) -> None:
        """Track creation epochs of replicas this policy just placed."""
        from ..sim.actions import Migrate, Replicate, Suicide

        for action in actions:
            if isinstance(action, Replicate):
                self._birth.setdefault(action.partition, {})[action.target_sid] = epoch
            elif isinstance(action, Migrate):
                by_sid = self._birth.setdefault(action.partition, {})
                by_sid[action.target_sid] = epoch
                by_sid.pop(action.source_sid, None)
            elif isinstance(action, Suicide):
                by_sid = self._birth.get(action.partition)
                if by_sid is not None:
                    by_sid.pop(action.sid, None)

    def _update_traffic(self, raw: np.ndarray) -> np.ndarray:
        """EWMA of the (P, D) traffic matrix (Eq. 11), in place.

        Per element this performs ``(1 - α)·old``, ``α·raw``, then their
        sum — the exact operation sequence :class:`Ewma` runs — with the
        products written into reused buffers instead of fresh ones.
        """
        alpha = self._params.alpha
        if self._traffic is None:
            self._traffic = raw.astype(np.float64, copy=True)
            self._traffic_scratch = np.empty_like(self._traffic)
        else:
            scratch = self._traffic_scratch
            assert scratch is not None
            np.multiply(self._traffic, 1.0 - alpha, out=self._traffic)
            np.multiply(raw, alpha, out=scratch)
            self._traffic += scratch
        return self._traffic

    def _update_served(self, raw: np.ndarray) -> np.ndarray:
        """EWMA of the (P, S) served matrix, padding on server growth.

        In place with a scratch buffer, same element sequence as
        :meth:`_update_traffic`.
        """
        alpha = self._params.alpha
        if self._served is None or raw.shape[1] > self._served.shape[1]:
            if self._served is None:
                self._served = raw.astype(np.float64, copy=True)
                self._served_scratch = np.empty_like(self._served)
                return self._served
            grown = np.zeros_like(raw, dtype=np.float64)
            grown[:, : self._served.shape[1]] = self._served
            self._served = grown
            self._served_scratch = np.empty_like(grown)
        scratch = self._served_scratch
        assert scratch is not None
        np.multiply(self._served, 1.0 - alpha, out=self._served)
        np.multiply(raw, alpha, out=scratch)
        self._served += scratch
        return self._served
