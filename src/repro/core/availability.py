"""Availability lower limit (paper Eq. 14).

Section II-D: with per-replica failure probability ``f`` and replica
number ``r``, the paper requires

    1 − Σ_{j=1..r} (−1)^{j+1} C(r, j) f^j  ≥  A_expect            (Eq. 14)

By the binomial theorem the sum telescopes:
``Σ (−1)^{j+1} C(r,j) f^j = 1 − (1−f)^r``, so the left side is exactly
``(1−f)^r`` — the probability that *all* ``r`` replicas are alive, which
*decreases* with ``r`` and therefore cannot serve as a minimum-replica
bound (replicating more would *reduce* it).  The paper's own worked
example ("if the system requires a minimum availability of 0.8 and the
failure probability is 0.1, then the minimum replica number is 2")
matches neither that literal reading as a lower bound nor the standard
at-least-one-alive availability ``1 − f^r`` (which already gives 0.9 at
r = 1).

Our resolution, used by every algorithm in the simulation and recorded
in DESIGN.md / EXPERIMENTS.md:

* availability is the standard redundancy formula
  ``A(r) = 1 − f^r`` (data available iff at least one copy is alive);
* the minimum replica count is ``max(2, min{r : 1 − f^r ≥ A_expect})``
  — the floor of 2 encodes the fault-tolerance premise that a *single*
  copy is never acceptable (losing one node must not lose data), and it
  reproduces the paper's example exactly: ``(0.8, 0.1) → 2``.

Both literal forms are also exported so tests can document the algebra.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "availability_all_alive",
    "availability_at_least_one",
    "inclusion_exclusion_sum",
    "min_replicas_for_availability",
]

#: Replica-count floor: the fault-tolerance premise of the paper (and of
#: every production store it cites) is that one copy is never enough.
FAULT_TOLERANCE_FLOOR: int = 2


def _check(f: float, replicas: int) -> None:
    if not 0.0 < f < 1.0:
        raise ConfigurationError(f"failure probability must be in (0, 1), got {f}")
    if replicas < 0:
        raise ConfigurationError(f"replica count must be >= 0, got {replicas}")


def inclusion_exclusion_sum(replicas: int, f: float) -> float:
    """The literal sum of Eq. 14: ``Σ_{j=1..r} (−1)^{j+1} C(r,j) f^j``.

    Equals ``1 − (1−f)^r`` identically (verified by a property test);
    exported so the algebraic claim in this module's docstring is
    executable documentation.
    """
    _check(f, replicas)
    total = 0.0
    for j in range(1, replicas + 1):
        total += ((-1) ** (j + 1)) * math.comb(replicas, j) * (f**j)
    return total


def availability_all_alive(replicas: int, f: float) -> float:
    """``(1−f)^r``: probability every copy is simultaneously alive.

    This is what Eq. 14's left-hand side evaluates to literally.
    """
    _check(f, replicas)
    return (1.0 - f) ** replicas


def availability_at_least_one(replicas: int, f: float) -> float:
    """``1 − f^r``: probability at least one copy is alive.

    The standard redundancy availability; what the simulation uses.
    ``r = 0`` gives 0.0 (data lost).
    """
    _check(f, replicas)
    if replicas == 0:
        return 0.0
    return 1.0 - f**replicas


def min_replicas_for_availability(a_expect: float, f: float) -> int:
    """Minimum replica count ``r_min`` for the availability floor.

    ``max(2, min{r : 1 − f^r ≥ a_expect})`` — see module docstring for
    why the floor is 2.  Matches the paper's example:

    >>> min_replicas_for_availability(0.8, 0.1)
    2
    >>> min_replicas_for_availability(0.999, 0.1)
    3
    """
    if not 0.0 < a_expect < 1.0:
        raise ConfigurationError(
            f"expected availability must be in (0, 1), got {a_expect}"
        )
    _check(f, 0)
    # Smallest r with f^r <= 1 - a_expect; the logarithm only estimates,
    # the explicit checks below settle floating-point boundary cases
    # (e.g. a_expect = 1 - f^r exactly).
    r = max(1, math.ceil(math.log(1.0 - a_expect) / math.log(f) - 1e-9))
    while availability_at_least_one(r, f) < a_expect:
        r += 1
    while r > 1 and availability_at_least_one(r - 1, f) >= a_expect:
        r -= 1
    return max(FAULT_TOLERANCE_FLOOR, r)
