"""M/G/c blocking probability (paper Eq. 18, Erlang-B).

Section II-E: "Among the physical nodes in the same datacenter, RFH
chooses a node with the lowest blocking probability":

    BP_i = (λτ)^c / c!  ·  [ Σ_{k=0..c} (λτ)^k / k! ]^{-1}       (Eq. 18)

with Poisson arrival rate λ, mean service time τ and processing limit c
— the Erlang-B formula, which for M/G/c/c systems depends on the service
distribution only through its mean (insensitivity), so "M/G/c_i model"
is computed exactly by Erlang-B.

We evaluate it with the standard numerically-stable recurrence
``B(0) = 1;  B(k) = a·B(k−1) / (k + a·B(k−1))`` instead of factorials,
which is exact and safe for large offered loads.

Per-server estimation: each server's offered load ``a = λτ`` is its
(smoothed) served queries per epoch divided by its per-replica service
capacity — i.e. how many service-times' worth of work arrives per
service time — and ``c`` is the server's concurrent slot count.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import ConfigurationError

__all__ = ["erlang_b", "offered_load", "server_blocking_probabilities"]


def erlang_b(offered: float, servers: int) -> float:
    """Erlang-B blocking probability for offered load ``a`` and ``c`` slots.

    ``offered`` is the dimensionless product λτ.  Monotonically
    increasing in ``offered`` and decreasing in ``servers`` (both pinned
    by property tests).  ``offered == 0`` gives 0.0.
    """
    if offered < 0:
        raise ConfigurationError(f"offered load must be >= 0, got {offered}")
    if servers < 1:
        raise ConfigurationError(f"server count must be >= 1, got {servers}")
    if offered <= 0.0:  # negatives already rejected above
        return 0.0
    b = 1.0
    for k in range(1, servers + 1):
        b = offered * b / (k + offered * b)
    return b


def offered_load(
    served_per_epoch: float, replica_capacity: float, service_slots: int
) -> float:
    """Dimensionless offered load ``a = λτ`` of one server.

    A server whose replicas can each serve ``replica_capacity`` queries
    per epoch has per-slot service rate ``replica_capacity`` per epoch;
    an arrival stream of ``served_per_epoch`` therefore offers
    ``served_per_epoch / replica_capacity`` service-times of work per
    epoch (λτ).  ``service_slots`` is unused in the load itself but kept
    in the signature for symmetry with :func:`erlang_b` call sites.
    """
    if replica_capacity <= 0:
        raise ConfigurationError(
            f"replica capacity must be > 0, got {replica_capacity}"
        )
    if served_per_epoch < 0:
        raise ConfigurationError(
            f"served count must be >= 0, got {served_per_epoch}"
        )
    return served_per_epoch / replica_capacity


def server_blocking_probabilities(
    cluster: Cluster, load_per_server: np.ndarray
) -> np.ndarray:
    """Eq. 18 for every server; dead servers get probability 1.0.

    ``load_per_server`` is the (possibly smoothed) queries-per-epoch
    vector, index-aligned with server ids.  A dead server "blocks"
    everything, which conveniently removes it from every lowest-BP
    placement choice.
    """
    if load_per_server.shape != (cluster.num_servers,):
        raise ConfigurationError(
            f"expected load vector of length {cluster.num_servers}, "
            f"got shape {load_per_server.shape}"
        )
    out = np.ones(cluster.num_servers, dtype=np.float64)
    for server in cluster.servers:
        if not server.alive:
            continue
        a = offered_load(
            float(load_per_server[server.sid]), server.replica_capacity, server.service_slots
        )
        out[server.sid] = erlang_b(a, server.service_slots)
    return out
