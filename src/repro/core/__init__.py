"""The paper's primary contribution: the RFH replication algorithm.

Section II of the paper, piece by piece:

* :mod:`repro.core.traffic` — traffic determination, Eqs. 2–8: the
  overflow recursion along routing paths that defines ``tr_ikt``;
* :mod:`repro.core.smoothing` — the EWMA of Eqs. 10–11;
* :mod:`repro.core.thresholds` — the β/γ/δ/μ predicates of
  Eqs. 12, 13, 15, 16;
* :mod:`repro.core.availability` — the availability lower limit of
  Eq. 14 and the derived minimum replica count;
* :mod:`repro.core.blocking` — the M/G/c (Erlang-B) blocking probability
  of Eq. 18;
* :mod:`repro.core.placement` — server choice inside a datacenter
  (lowest blocking probability subject to the Eq. 19 storage gate);
* :mod:`repro.core.migration` — migration-benefit evaluation (Eqs. 16–17);
* :mod:`repro.core.decision` — the per-virtual-node decision tree of
  Fig. 2;
* :mod:`repro.core.policy` — :class:`RFHPolicy`, the engine-facing
  algorithm.
"""

from .availability import (
    availability_all_alive,
    availability_at_least_one,
    min_replicas_for_availability,
)
from .blocking import erlang_b, server_blocking_probabilities
from .decision import RFHDecision
from .policy import RFHPolicy
from .smoothing import Ewma
from .traffic import ServiceResult, serve_epoch
from .thresholds import (
    is_holder_overloaded,
    is_suicide_candidate,
    is_traffic_hub,
    migration_benefit_met,
)

__all__ = [
    "serve_epoch",
    "ServiceResult",
    "Ewma",
    "is_holder_overloaded",
    "is_traffic_hub",
    "is_suicide_candidate",
    "migration_benefit_met",
    "availability_all_alive",
    "availability_at_least_one",
    "min_replicas_for_availability",
    "erlang_b",
    "server_blocking_probabilities",
    "RFHDecision",
    "RFHPolicy",
]
