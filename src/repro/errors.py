"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from runtime simulation
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at construction time (``__post_init__`` of the frozen
    config dataclasses) so that a bad parameter never reaches the
    simulation engine.
    """


class TopologyError(ReproError):
    """The WAN/cluster topology is malformed (unknown node, disconnected
    graph, duplicate label, ...)."""


class RingError(ReproError):
    """Consistent-hashing ring invariant violation (empty ring, unknown
    token, duplicate position, ...)."""


class CapacityError(ReproError):
    """A placement would exceed a server's storage or bandwidth budget."""


class ActionError(ReproError):
    """A replication policy emitted an invalid action (unknown server,
    replica that does not exist, migration to the same node, ...)."""


class SimulationError(ReproError):
    """The engine reached an inconsistent state; indicates a library bug
    rather than a user error."""


class WorkloadError(ReproError):
    """A workload pattern or generator was asked for something it cannot
    produce (negative epoch, empty weight vector, ...)."""


class TsdbError(ReproError):
    """A time-series artifact (``.tsdb.json``) is malformed, has an
    unsupported format/version, or two artifacts cannot be aligned."""


class ProvenanceError(ReproError):
    """A decision-provenance artifact (``.prov.json``) is malformed, has
    an unsupported format/version, or a recorder was misused."""


class SweepError(ReproError):
    """A sweep manifest or ``.sweep.json`` artifact is malformed, has an
    unsupported format/version, or two sweeps cannot be compared."""
