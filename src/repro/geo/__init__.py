"""Geographic hierarchy substrate (paper Section II-A).

Every physical node carries a label of the form
``continent-country-datacenter-room-rack-server`` (e.g.
``NA-USA-GA1-C01-R02-S5``) and the *availability level* of a pair of
servers is defined by the deepest hierarchy level they share:

===========  =====================================
Level        Meaning
===========  =====================================
5 (highest)  different datacenters
4            same datacenter, different rooms
3            same room, different racks
2            same rack, different servers
1 (lowest)   the very same server
===========  =====================================
"""

from .availability_level import AVAILABILITY_LEVELS, AvailabilityLevel, availability_level
from .hierarchy import (
    GeoHierarchy,
    build_default_hierarchy,
    build_synthetic_hierarchy,
)
from .labels import GeoLabel

__all__ = [
    "GeoLabel",
    "AvailabilityLevel",
    "AVAILABILITY_LEVELS",
    "availability_level",
    "GeoHierarchy",
    "build_default_hierarchy",
    "build_synthetic_hierarchy",
]
