"""Availability levels of server pairs (paper Section II-A).

"If two servers are in different datacenters, they are of the highest
availability level, Level 5.  If two servers are in the same datacenter,
but different rooms, their availability level is 4.  Correspondingly, the
lowest level is Level 1, which means the two replicas are in the same
server."

The mapping from shared-label-prefix depth to level is therefore::

    shared depth 0..2 (different datacenter)  ->  level 5
    shared depth 3    (same DC, diff room)    ->  level 4
    shared depth 4    (same room, diff rack)  ->  level 3
    shared depth 5    (same rack, diff server)->  level 2
    shared depth 6    (same server)           ->  level 1
"""

from __future__ import annotations

import enum

from .labels import GeoLabel

__all__ = ["AvailabilityLevel", "availability_level", "AVAILABILITY_LEVELS"]


class AvailabilityLevel(enum.IntEnum):
    """Geographic-diversity level of a replica pair; higher is safer."""

    SAME_SERVER = 1
    SAME_RACK = 2
    SAME_ROOM = 3
    SAME_DATACENTER = 4
    DIFFERENT_DATACENTER = 5


#: All levels from safest to least safe, for iteration in preference order.
AVAILABILITY_LEVELS: tuple[AvailabilityLevel, ...] = (
    AvailabilityLevel.DIFFERENT_DATACENTER,
    AvailabilityLevel.SAME_DATACENTER,
    AvailabilityLevel.SAME_ROOM,
    AvailabilityLevel.SAME_RACK,
    AvailabilityLevel.SAME_SERVER,
)

_DEPTH_TO_LEVEL: dict[int, AvailabilityLevel] = {
    0: AvailabilityLevel.DIFFERENT_DATACENTER,
    1: AvailabilityLevel.DIFFERENT_DATACENTER,
    2: AvailabilityLevel.DIFFERENT_DATACENTER,
    3: AvailabilityLevel.SAME_DATACENTER,
    4: AvailabilityLevel.SAME_ROOM,
    5: AvailabilityLevel.SAME_RACK,
    6: AvailabilityLevel.SAME_SERVER,
}


def availability_level(a: GeoLabel, b: GeoLabel) -> AvailabilityLevel:
    """Availability level of placing one replica at ``a`` and one at ``b``.

    Symmetric: ``availability_level(a, b) == availability_level(b, a)``.
    """
    return _DEPTH_TO_LEVEL[a.shared_prefix_depth(b)]
