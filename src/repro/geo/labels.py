"""Hierarchical geographic labels.

The paper (Section II-A): "each physical node ... has a label of the form
'continent-country-datacenter-room-rack-server' in order to identify its
geographical location.  For example ... a server located in Datacenter A
is possibly labeled as 'NA-USA-GA1-C01-R02-S5'."

:class:`GeoLabel` is an immutable six-component label with parsing,
formatting and prefix comparison.  The paper's automatic address
configuration (DAC/BCube, refs [2][3]) is replaced by deterministic label
assignment — see DESIGN.md, substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError

__all__ = ["GeoLabel"]

_NUM_COMPONENTS = 6


@dataclass(frozen=True, order=True)
class GeoLabel:
    """A ``continent-country-datacenter-room-rack-server`` location label.

    Components are free-form non-empty strings without ``-``.  Ordering
    and equality are lexicographic over the component tuple, which makes
    labels usable as deterministic sort keys.
    """

    continent: str
    country: str
    datacenter: str
    room: str
    rack: str
    server: str

    def __post_init__(self) -> None:
        for name in ("continent", "country", "datacenter", "room", "rack", "server"):
            value = getattr(self, name)
            if not value:
                raise TopologyError(f"label component {name!r} must be non-empty")
            if "-" in value:
                raise TopologyError(
                    f"label component {name!r} must not contain '-', got {value!r}"
                )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "GeoLabel":
        """Parse ``"NA-USA-GA1-C01-R02-S5"`` into a :class:`GeoLabel`.

        Raises
        ------
        TopologyError
            If the string does not have exactly six ``-``-separated
            non-empty components.
        """
        parts = text.split("-")
        if len(parts) != _NUM_COMPONENTS:
            raise TopologyError(
                f"expected {_NUM_COMPONENTS} '-'-separated components, got {len(parts)}: {text!r}"
            )
        return cls(*parts)

    def __str__(self) -> str:
        return "-".join(self.components)

    @property
    def components(self) -> tuple[str, str, str, str, str, str]:
        """The six components, outermost (continent) first."""
        return (
            self.continent,
            self.country,
            self.datacenter,
            self.room,
            self.rack,
            self.server,
        )

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    def shared_prefix_depth(self, other: "GeoLabel") -> int:
        """Number of leading components shared with ``other`` (0..6).

        Depth 6 means the two labels denote the very same server; depth 0
        means not even the continent matches.
        """
        depth = 0
        for mine, theirs in zip(self.components, other.components):
            if mine != theirs:
                break
            depth += 1
        return depth

    def same_datacenter(self, other: "GeoLabel") -> bool:
        """True when both labels are inside the same datacenter."""
        return self.shared_prefix_depth(other) >= 3

    def same_rack(self, other: "GeoLabel") -> bool:
        """True when both labels are inside the same rack."""
        return self.shared_prefix_depth(other) >= 5

    def with_server(self, server: str) -> "GeoLabel":
        """Copy of this label pointing at a different server slot."""
        return GeoLabel(
            self.continent, self.country, self.datacenter, self.room, self.rack, server
        )
