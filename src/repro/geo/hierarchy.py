"""The default 10-datacenter global deployment (paper Fig. 1 + III-A).

"It consists of 10 datacenters geographically distributed in different
countries, different continents.  Three of them are in America, two of
them are in Canada, and two are in Swiss.  The rest three are in China
and Japan."

The paper never names the sites, so we pin plausible cities (DESIGN.md,
substitution table): the exact coordinates only set WAN distances, and
only the *relative* geometry (which datacenters sit on transit paths)
matters for the traffic-hub dynamics being reproduced.

Sites are lettered ``A``..``J`` to match Fig. 1's narrative: ``A`` is the
US-East hot-partition holder; ``D``/``E`` (Canada) and ``F`` (Switzerland)
become the transit hubs of queries arriving from Asia (``H``/``I``/``J``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from .labels import GeoLabel

__all__ = [
    "DatacenterSite",
    "GeoHierarchy",
    "build_default_hierarchy",
    "build_synthetic_hierarchy",
    "DEFAULT_SITES",
]


@dataclass(frozen=True)
class DatacenterSite:
    """One datacenter location: letter name, geography and coordinates."""

    index: int
    name: str
    continent: str
    country: str
    city: str
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise TopologyError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise TopologyError(f"longitude out of range: {self.longitude}")

    def label_prefix(self) -> tuple[str, str, str]:
        """(continent, country, datacenter) components for server labels."""
        return (self.continent, self.country, self.name)


#: The default deployment matching Section III-A's country mix.
DEFAULT_SITES: tuple[DatacenterSite, ...] = (
    DatacenterSite(0, "A", "NA", "USA", "Ashburn", 39.04, -77.49),
    DatacenterSite(1, "B", "NA", "USA", "Dallas", 32.78, -96.80),
    DatacenterSite(2, "C", "NA", "USA", "SanJose", 37.34, -121.89),
    DatacenterSite(3, "D", "NA", "CAN", "Toronto", 43.65, -79.38),
    DatacenterSite(4, "E", "NA", "CAN", "Vancouver", 49.28, -123.12),
    DatacenterSite(5, "F", "EU", "CHE", "Zurich", 47.37, 8.54),
    DatacenterSite(6, "G", "EU", "CHE", "Geneva", 46.20, 6.14),
    DatacenterSite(7, "H", "AS", "CHN", "Beijing", 39.90, 116.40),
    DatacenterSite(8, "I", "AS", "JPN", "Tokyo", 35.68, 139.69),
    DatacenterSite(9, "J", "AS", "CHN", "Shanghai", 31.23, 121.47),
)


class GeoHierarchy:
    """An indexed collection of datacenter sites with label helpers."""

    def __init__(self, sites: tuple[DatacenterSite, ...]) -> None:
        if not sites:
            raise TopologyError("a hierarchy needs at least one datacenter site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate datacenter names: {names}")
        for expected, site in enumerate(sites):
            if site.index != expected:
                raise TopologyError(
                    f"site indices must be 0..n-1 in order; saw {site.index} at position {expected}"
                )
        self._sites = sites
        self._by_name = {s.name: s for s in sites}

    # ------------------------------------------------------------------
    @property
    def sites(self) -> tuple[DatacenterSite, ...]:
        """All sites in index order."""
        return self._sites

    @property
    def num_datacenters(self) -> int:
        return len(self._sites)

    def site(self, index: int) -> DatacenterSite:
        """Site by integer index; raises :class:`TopologyError` if unknown."""
        if not 0 <= index < len(self._sites):
            raise TopologyError(f"datacenter index out of range: {index}")
        return self._sites[index]

    def by_name(self, name: str) -> DatacenterSite:
        """Site by letter name (``"A"``..)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"unknown datacenter name: {name!r}") from None

    def indices_by_country(self, country: str) -> tuple[int, ...]:
        """Indices of all datacenters in ``country``."""
        return tuple(s.index for s in self._sites if s.country == country)

    def indices_by_continent(self, continent: str) -> tuple[int, ...]:
        """Indices of all datacenters on ``continent``."""
        return tuple(s.index for s in self._sites if s.continent == continent)

    # ------------------------------------------------------------------
    def server_label(self, dc_index: int, room: int, rack: int, server: int) -> GeoLabel:
        """Deterministic label for a server slot inside a datacenter.

        Rooms/racks/servers are 0-based slot indices and are rendered with
        the paper's ``C01``/``R02``/``S5`` style (1-based display).
        """
        site = self.site(dc_index)
        continent, country, dc = site.label_prefix()
        return GeoLabel(
            continent=continent,
            country=country,
            datacenter=dc,
            room=f"C{room + 1:02d}",
            rack=f"R{rack + 1:02d}",
            server=f"S{server + 1}",
        )


def build_default_hierarchy() -> GeoHierarchy:
    """The 10-site deployment of Section III-A (3 US, 2 CA, 2 CH, 3 CN/JP)."""
    return GeoHierarchy(DEFAULT_SITES)


def build_synthetic_hierarchy(num_datacenters: int) -> GeoHierarchy:
    """A deterministic ``n``-site deployment for scale tests/benchmarks.

    Coordinates follow a golden-ratio spiral (irrational strides in both
    axes), so pairwise distances are varied and collision-free but a
    pure function of the site index — no RNG, identical on every
    machine.  Pair with :func:`repro.net.builder.build_ring_wan`, since
    the default link set names only the ten paper sites.
    """
    if num_datacenters < 1:
        raise TopologyError(
            f"a hierarchy needs at least one site, got {num_datacenters}"
        )
    golden = 0.6180339887498949  # 1/phi
    sites = tuple(
        DatacenterSite(
            index=i,
            name=f"N{i:03d}",
            continent="SY",
            country="SYN",
            city=f"Synth{i}",
            latitude=-60.0 + 120.0 * ((i * golden) % 1.0),
            longitude=-180.0 + 360.0 * ((i * golden * golden) % 1.0),
        )
        for i in range(num_datacenters)
    )
    return GeoHierarchy(sites)
