"""The random replication baseline (paper refs [4][21][22]).

Dynamo "will replicate data at the N-1 clockwise successor nodes.
Although adjacent in node ID space, these replicas are actually randomly
chosen considering geographical location" (Section II-A).  Concretely:

* **availability floor**: place copies at the partition key's clockwise
  ring successors until ``r_min`` holds — the Dynamo rule verbatim;
* **overload**: replicate onto a uniformly random alive server (storage
  gate respected) — "replicas will be distributed to any other
  datacenters with a random manner";
* **no migration, no suicide** — the scheme is static, which is exactly
  why Fig. 3 shows it with the lowest utilization and Fig. 4 with the
  highest replica counts.
"""

from __future__ import annotations

import numpy as np

from ..config import RFHParameters
from ..core.placement import eligible_servers
from ..ring.partition import PartitionMapper
from ..sim.actions import Action, Replicate
from ..sim.observation import EpochObservation
from ..sim.reasons import OVERLOAD, SUCCESSOR
from .base import SmoothedSignals

__all__ = ["RandomPolicy"]


class RandomPolicy:
    """Static random placement: successors for safety, dice for load."""

    name = "random"

    def __init__(
        self,
        params: RFHParameters,
        mapper: PartitionMapper,
        rng: np.random.Generator,
    ) -> None:
        self._params = params
        self._mapper = mapper
        self._rng = rng
        self._signals = SmoothedSignals(params)

    def decide(self, obs: EpochObservation) -> list[Action]:
        signals = self._signals.update(obs)
        actions: list[Action] = []
        for partition in range(obs.num_partitions):
            if not obs.replicas.has_holder(partition):
                continue
            holder_sid = obs.replicas.holder(partition)
            replica_count = obs.replicas.replica_count(partition)

            if replica_count < obs.rmin:
                target = self._next_successor(partition, obs)
                if target is not None:
                    actions.append(
                        Replicate(partition, holder_sid, target, reason=SUCCESSOR)
                    )
                continue

            if signals.holder_overloaded(partition, self._params.beta):
                target = self._random_server(partition, obs)
                if target is not None:
                    actions.append(
                        Replicate(partition, holder_sid, target, reason=OVERLOAD)
                    )
        return actions

    # ------------------------------------------------------------------
    def _next_successor(self, partition: int, obs: EpochObservation) -> int | None:
        """First clockwise successor that is alive, gated and copy-free."""
        holding = {sid for sid, _ in obs.replicas.servers_with(partition)}
        # Ask for enough successors to skip the ones already holding.
        want = len(holding) + obs.rmin + 1
        for sid in self._mapper.successor_sites(partition, want):
            if sid in holding:
                continue
            server = obs.cluster.server(sid)
            if not server.alive:
                continue
            if server.storage_gate_open(obs.partition_size_mb, self._params.phi):
                return sid
        return None

    def _random_server(self, partition: int, obs: EpochObservation) -> int | None:
        """Uniformly random eligible server anywhere in the system."""
        holding = {sid for sid, _ in obs.replicas.servers_with(partition)}
        candidates: list[int] = []
        for dc in range(obs.num_datacenters):
            candidates.extend(
                eligible_servers(
                    obs.cluster,
                    dc,
                    obs.partition_size_mb,
                    self._params.phi,
                    exclude=holding,
                )
            )
        if not candidates:
            return None
        return int(candidates[int(self._rng.integers(len(candidates)))])
