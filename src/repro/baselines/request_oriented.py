"""The request-oriented baseline (paper refs [16][5], Gnutella-style).

"It will choose among datacenters closest to the clients, where most of
the queries come from ... It will randomly choose a node among the top 3
ones to replicate on.  The migration process is started when another
node without any replica joins in the list of the top 3" (Section II-A).

Mechanics implemented:

* **requester ranking** — per partition, a slowly-decaying cumulative
  count of query origins (decay 0.99/epoch ≈ a hundred-epoch memory:
  Gnutella-style popularity is historical, which is precisely why the
  paper's Fig. 3(b) shows this algorithm collapsing when the flash crowd
  moves — the ranking lags the shift and the old replicas sit unused);
* **replication** — when the holder is overloaded (shared Eq. 12
  signal), replicate onto a random server in a random top-3 requester
  datacenter whose local demand exceeds its local replica capacity;
  demand-met sites are skipped, which is what bounds the replica count
  (Fig. 4 shows request-oriented with the fewest replicas);
* **availability floor** — below ``r_min`` it replicates at the
  top-ranked requester sites;
* **migration** — a top-3 requester site without any replica pulls the
  replica from the lowest-ranked non-top-3 site, the paper's stated
  trigger; this is what makes request-oriented the most migration-happy
  algorithm in Figs. 6–7;
* **no suicide** — stale replicas linger ("the replicas of a former hot
  partition will become a waste of resource").
"""

from __future__ import annotations

import numpy as np

from ..config import RFHParameters
from ..core.placement import choose_random_server
from ..sim.actions import Action, Migrate, Replicate
from ..sim.observation import EpochObservation
from ..sim.reasons import AVAILABILITY, DEMAND, TOP3_CHANGE
from .base import SmoothedSignals

__all__ = ["RequestOrientedPolicy"]

#: Per-epoch decay of the cumulative origin counts.
ORIGIN_DECAY: float = 0.99

#: Size of the requester preference list ("the top 3 ones").
TOP_K: int = 3

#: Top-3 membership hysteresis: an outside site only displaces the
#: weakest current top-3 member when its historical demand exceeds the
#: member's by this factor.  Under uniform origins the raw ranking is
#: pure noise — without the margin the preference list (and with it the
#: replica set and the migration trigger) churns every epoch; a genuine
#: flash-crowd shift clears the margin within a few epochs of decay.
CHALLENGER_MARGIN: float = 2.0


class RequestOrientedPolicy:
    """Replicate near whoever asks the most (historically)."""

    name = "request"

    def __init__(self, params: RFHParameters, rng: np.random.Generator) -> None:
        self._params = params
        self._rng = rng
        self._signals = SmoothedSignals(params)
        self._origin_counts: np.ndarray | None = None  # (P, D)
        # Sticky per-partition preference lists ("the top 3 ones"); a
        # member is only displaced by a decisively stronger challenger.
        self._top3: dict[int, list[int]] = {}

    def decide(self, obs: EpochObservation) -> list[Action]:
        signals = self._signals.update(obs)
        counts = obs.queries.counts.astype(np.float64)
        if self._origin_counts is None:
            self._origin_counts = counts.copy()
        else:
            self._origin_counts = ORIGIN_DECAY * self._origin_counts + counts

        actions: list[Action] = []
        for partition in range(obs.num_partitions):
            if not obs.replicas.has_holder(partition):
                continue
            action = self._decide_partition(partition, obs, signals)
            if action is not None:
                actions.append(action)
        return actions

    # ------------------------------------------------------------------
    def _decide_partition(self, partition, obs, signals) -> Action | None:
        assert self._origin_counts is not None
        holder_sid = obs.replicas.holder(partition)
        holder_dc = obs.cluster.dc_of(holder_sid)
        replica_count = obs.replicas.replica_count(partition)
        top = self._sticky_top(partition)

        if replica_count < obs.rmin:
            target = self._place_at(partition, obs, top)
            if target is not None:
                return Replicate(partition, holder_sid, target, reason=AVAILABILITY)
            return None

        # Migration trigger: a top requester site with no replica pulls
        # the replica parked at the least-requesting outside site.
        layout = obs.replicas.replicas_by_dc(partition)
        empty_top = [dc for dc in top if dc not in layout]
        outside = [
            dc for dc in layout if dc not in top and dc != holder_dc
        ]
        if empty_top and outside:
            src_dc = min(
                outside, key=lambda dc: (self._origin_counts[partition, dc], dc)
            )
            dst_dc = empty_top[0]
            src_sid = layout[src_dc][0][0]
            if src_sid != holder_sid:
                target = choose_random_server(
                    obs.cluster,
                    dst_dc,
                    self._rng,
                    obs.partition_size_mb,
                    self._params.phi,
                    exclude=[sid for sid, _ in obs.replicas.servers_with(partition)],
                )
                if target is not None:
                    return Migrate(partition, src_sid, target, reason=TOP3_CHANGE)

        if signals.holder_overloaded(partition, self._params.beta):
            unmet = [
                dc
                for dc in top
                if self._demand(partition, dc) > self._local_capacity(partition, obs, dc)
            ]
            if unmet:
                target = self._place_at(partition, obs, unmet)
                if target is not None:
                    return Replicate(partition, holder_sid, target, reason=DEMAND)
        return None

    # ------------------------------------------------------------------
    def _sticky_top(self, partition: int) -> list[int]:
        """The partition's top-3 requester list, with hysteresis.

        The list initialises to the current count ranking; afterwards at
        most one member per epoch is displaced, and only by a challenger
        whose decayed demand beats the weakest member's by
        :data:`CHALLENGER_MARGIN` — this is "another node ... joins in
        the list of the top 3", debounced against ranking noise.
        """
        assert self._origin_counts is not None
        row = self._origin_counts[partition]
        ranking = sorted(range(row.size), key=lambda dc: (-row[dc], dc))
        current = self._top3.get(partition)
        if current is None:
            current = ranking[:TOP_K]
            self._top3[partition] = current
            return list(current)
        outsiders = [dc for dc in ranking if dc not in current]
        if outsiders:
            challenger = outsiders[0]
            weakest = min(current, key=lambda dc: (row[dc], dc))
            if row[challenger] >= CHALLENGER_MARGIN * max(row[weakest], 1e-12):
                current[current.index(weakest)] = challenger
        return list(current)

    def _demand(self, partition: int, dc: int) -> float:
        """Recent per-epoch demand at ``dc``: decayed count normalised to
        a per-epoch rate (a decay of ρ keeps ≈ 1/(1−ρ) epochs of history)."""
        assert self._origin_counts is not None
        return float(self._origin_counts[partition, dc]) * (1.0 - ORIGIN_DECAY)

    def _local_capacity(self, partition: int, obs: EpochObservation, dc: int) -> float:
        """Per-epoch service capacity of the partition's replicas in ``dc``."""
        layout = obs.replicas.replicas_by_dc(partition)
        total = 0.0
        for sid, count in layout.get(dc, ()):
            server = obs.cluster.server(sid)
            if server.alive:
                total += count * server.replica_capacity
        return total

    def _place_at(
        self, partition: int, obs: EpochObservation, dcs: list[int]
    ) -> int | None:
        """Random server in a random candidate datacenter (paper: "randomly
        choose a node among the top 3 ones")."""
        if not dcs:
            return None
        holding = [sid for sid, _ in obs.replicas.servers_with(partition)]
        order = list(dcs)
        self._rng.shuffle(order)
        for dc in order:
            target = choose_random_server(
                obs.cluster,
                dc,
                self._rng,
                obs.partition_size_mb,
                self._params.phi,
                exclude=holding,
            )
            if target is not None:
                return target
        return None
