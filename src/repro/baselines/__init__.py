"""The paper's comparison baselines (Section II-A, Section III).

* :class:`RandomPolicy` — "most of the current Cloud storage systems
  replicate each data item at a fixed number of physically distinct
  nodes in a static way": Dynamo-style successor placement for the
  availability floor, uniformly random placement under overload, no
  migration, no suicide (paper refs [4][21][22]).
* :class:`OwnerOrientedPolicy` — "the coordinator will consider
  maximizing availability while minimizing replication cost" near the
  primary owner (paper refs [7][11][12][13]).
* :class:`RequestOrientedPolicy` — "encourages replicating data on
  datacenters near to the requesters with the highest query rate",
  Gnutella-style (paper refs [16][5]).

All three consume the same :class:`~repro.sim.observation.EpochObservation`
and share the Eq. 12 overload definition with RFH, so the comparison
isolates *placement policy*, exactly as the paper's evaluation does.
"""

from .base import SmoothedSignals
from .owner_oriented import OwnerOrientedPolicy
from .random_policy import RandomPolicy
from .request_oriented import RequestOrientedPolicy

__all__ = [
    "SmoothedSignals",
    "RandomPolicy",
    "OwnerOrientedPolicy",
    "RequestOrientedPolicy",
]
