"""Shared baseline machinery.

Every algorithm in the comparison needs the same two smoothed signals —
the per-partition average query rate (Eqs. 9–10) and the per-(partition,
datacenter) traffic (Eqs. 8, 11) — and the same Eq. 12 overload test.
:class:`SmoothedSignals` packages that state so the three baselines and
any future policy stay signal-compatible with RFH.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RFHParameters
from ..core.smoothing import Ewma
from ..core.thresholds import is_blocked, is_holder_overloaded
from ..sim.observation import EpochObservation

__all__ = ["SmoothedSignals", "EpochSignals"]


@dataclass(frozen=True)
class EpochSignals:
    """The smoothed signals for one epoch."""

    avg_query: np.ndarray  # (P,)   Eq. 10
    traffic: np.ndarray  # (P, D)  Eq. 11 over datacenters
    holder_traffic: np.ndarray  # (P,)   Eq. 11 over the holder server
    raw_holder_traffic: np.ndarray  # (P,)  this epoch, unsmoothed
    unserved: np.ndarray  # (P,)   smoothed blocked queries

    def holder_overloaded(self, partition: int, beta: float) -> bool:
        """Eq. 12, requiring the smoothed *and* the raw signal to agree,
        plus the blocked-queries trigger.

        The same definition every policy (including RFH) uses: smoothing
        alone keeps reporting overload for ~1/alpha epochs after relief
        arrives, which would over-build each partition by that many
        replicas regardless of placement quality; and persistently
        blocked queries are overload even when Eq. 12's relative
        threshold is not crossed.
        """
        avg = float(self.avg_query[partition])
        if is_blocked(float(self.unserved[partition]), avg):
            return True
        return is_holder_overloaded(
            float(self.holder_traffic[partition]), avg, beta
        ) and is_holder_overloaded(
            float(self.raw_holder_traffic[partition]), avg, beta
        )


class SmoothedSignals:
    """EWMA state shared by the baseline policies."""

    def __init__(self, params: RFHParameters) -> None:
        self._params = params
        self._avg_query = Ewma(params.alpha)
        self._traffic = Ewma(params.alpha)
        self._holder_traffic = Ewma(params.alpha)
        self._unserved = Ewma(params.alpha)

    def update(self, obs: EpochObservation) -> EpochSignals:
        """Fold one epoch's observation in; returns this epoch's signals."""
        avg_query = np.asarray(self._avg_query.update(obs.system_average_query()))
        traffic = np.asarray(self._traffic.update(obs.traffic_dc))
        holder_traffic = np.asarray(self._holder_traffic.update(obs.holder_traffic))
        unserved = np.asarray(self._unserved.update(obs.unserved))
        return EpochSignals(
            avg_query=avg_query,
            traffic=traffic,
            holder_traffic=holder_traffic,
            raw_holder_traffic=np.asarray(obs.holder_traffic, dtype=np.float64),
            unserved=unserved,
        )
