"""The owner-oriented baseline (paper refs [7][11][12][13]).

"If with an owner-oriented manner, the coordinator will consider
maximizing availability while minimizing replication cost" (Eq. 1:
``c = d · f · s / b``).  In Fig. 1's example "replicas will be placed on
B and C, which are in the same country of A, or it will replicate on D,
which is in the same continent of A, with relatively low replication
cost but high availability."

Placement rule implemented here, per new copy:

1. rank candidate datacenters by the availability level the new copy
   would add against the *closest existing copy*
   (:func:`~repro.geo.availability_level`, higher is safer), breaking
   ties by Eq. 1 replication cost from the holder — so the first replica
   lands in the nearest *different* datacenter (level 5 at minimum
   cost), the next in the next-nearest, and only once different-DC
   options are exhausted does it fall back to same-DC/room/rack slots;
2. inside the chosen datacenter, prefer the server that maximises label
   diversity against existing copies ("it would like to choose a rack
   different from another replica, or at least chooses a different
   server", Section III-E).

Migration "actually happens only when physical nodes are added into or
removed from the system": after a membership change the policy migrates
a replica only when strictly better availability-versus-cost appears —
in the paper's scenarios (and ours) this fires rarely, keeping Fig. 6/7
owner curves near zero.
"""

from __future__ import annotations

from ..config import RFHParameters
from ..geo.availability_level import AvailabilityLevel, availability_level
from ..sim.actions import Action, Migrate, Replicate
from ..sim.observation import EpochObservation
from ..sim.reasons import AVAILABILITY, MEMBERSHIP_REBALANCE, OVERLOAD
from .base import SmoothedSignals

__all__ = ["OwnerOrientedPolicy"]


class OwnerOrientedPolicy:
    """Availability-versus-cost placement near the primary owner."""

    name = "owner"

    def __init__(self, params: RFHParameters) -> None:
        self._params = params
        self._signals = SmoothedSignals(params)
        self._last_membership: frozenset[int] | None = None

    def decide(self, obs: EpochObservation) -> list[Action]:
        signals = self._signals.update(obs)
        membership = frozenset(obs.cluster.alive_server_ids())
        membership_changed = (
            self._last_membership is not None and membership != self._last_membership
        )
        self._last_membership = membership

        actions: list[Action] = []
        for partition in range(obs.num_partitions):
            if not obs.replicas.has_holder(partition):
                continue
            holder_sid = obs.replicas.holder(partition)
            replica_count = obs.replicas.replica_count(partition)

            needs_copy = replica_count < obs.rmin
            overloaded = signals.holder_overloaded(partition, self._params.beta)
            if needs_copy or overloaded:
                target = self._best_target(partition, obs)
                if target is not None:
                    reason = AVAILABILITY if needs_copy else OVERLOAD
                    actions.append(Replicate(partition, holder_sid, target, reason))
                continue

            if membership_changed:
                migration = self._rebalance_after_membership(partition, obs)
                if migration is not None:
                    actions.append(migration)
        return actions

    # ------------------------------------------------------------------
    def _best_target(self, partition: int, obs: EpochObservation) -> int | None:
        """Max availability level added, then min Eq. 1 cost — among the
        owner's neighbourhood.

        The paper's owner-oriented scheme explicitly stays close: "it is
        better to choose a different datacenter close to the primary
        partition owner", and its cost depends on how many "close
        neighbors" the holder has.  Candidates are therefore the
        holder's datacenter and its direct WAN neighbours only — which
        is also what gives this baseline its long lookup paths (queries
        from far origins travel almost the whole route before meeting a
        replica, Fig. 9).
        """
        cluster = obs.cluster
        holder_dc = cluster.dc_of(obs.replicas.holder(partition))
        existing = [
            cluster.server(sid).label
            for sid, _ in obs.replicas.servers_with(partition)
        ]
        holding = {sid for sid, _ in obs.replicas.servers_with(partition)}

        neighbourhood = [holder_dc, *obs.router.wan_neighbors(holder_dc)]
        best_sid: int | None = None
        best_key: tuple[float, float, int] | None = None
        for dc in neighbourhood:
            cost = self._replication_cost(obs, holder_dc, dc)
            for server in cluster.alive_in_dc(dc):
                if server.sid in holding:
                    continue
                if not server.storage_gate_open(
                    obs.partition_size_mb, self._params.phi
                ):
                    continue
                level = min(
                    (availability_level(server.label, lbl) for lbl in existing),
                    default=AvailabilityLevel.DIFFERENT_DATACENTER,
                )
                # Maximize level; among equals minimize cost; tie by sid.
                key = (-float(level), cost, server.sid)
                if best_key is None or key < best_key:
                    best_key = key
                    best_sid = server.sid
        return best_sid

    def _replication_cost(
        self, obs: EpochObservation, src_dc: int, dst_dc: int
    ) -> float:
        """Eq. 1 with the configured failure rate and partition size."""
        from ..metrics.cost import replication_cost

        return replication_cost(
            distance_km=obs.router.distance_km(src_dc, dst_dc)
            if src_dc != dst_dc
            else 1.0,
            failure_rate=self._params.failure_rate,
            size_mb=obs.partition_size_mb,
            bandwidth_mb=obs.cluster.params.replication_bandwidth_mb,
        )

    def _rebalance_after_membership(
        self, partition: int, obs: EpochObservation
    ) -> Migrate | None:
        """Migrate one replica when membership change opened a strictly
        better availability-versus-cost slot.

        Only the *worst-diversity* replica is considered, and only a
        strict availability-level improvement triggers a move — cost
        alone never justifies migration for this policy.
        """
        cluster = obs.cluster
        holder_sid = obs.replicas.holder(partition)
        entries = [sid for sid, _ in obs.replicas.servers_with(partition) if sid != holder_sid]
        if not entries:
            return None
        labels = {
            sid: cluster.server(sid).label
            for sid, _ in obs.replicas.servers_with(partition)
        }

        def diversity(sid: int) -> int:
            others = [lbl for other, lbl in labels.items() if other != sid]
            if not others:
                return int(AvailabilityLevel.DIFFERENT_DATACENTER)
            return int(min(availability_level(labels[sid], lbl) for lbl in others))

        worst = min(entries, key=lambda sid: (diversity(sid), sid))
        worst_level = diversity(worst)
        if worst_level >= int(AvailabilityLevel.DIFFERENT_DATACENTER):
            return None  # already maximally diverse
        target = self._best_target(partition, obs)
        if target is None:
            return None
        target_label = cluster.server(target).label
        target_level = min(
            availability_level(target_label, lbl)
            for other, lbl in labels.items()
            if other != worst
        )
        if int(target_level) > worst_level:
            return Migrate(partition, worst, target, reason=MEMBERSHIP_REBALANCE)
        return None
