"""The per-epoch metric store experiments read back.

One :class:`MetricsCollector` per simulation run; the engine records a
fixed set of named series every epoch (see
:attr:`MetricsCollector.STANDARD_SERIES`), so downstream figure code can
rely on their presence and equal lengths.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .series import Series

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Named per-epoch series with an enforced common length."""

    #: Series the engine records every epoch, in recording order.
    STANDARD_SERIES: tuple[str, ...] = (
        "utilization",
        "total_replicas",
        "avg_replicas",
        "replication_count",
        "replication_cost",
        "migration_count",
        "migration_cost",
        "suicide_count",
        "load_imbalance",
        "server_load_imbalance",
        "path_length",
        "mean_latency_ms",
        "sla_attainment",
        "unserved",
        "served",
        "queries",
        "alive_servers",
        "mean_availability",
        "lost_partitions",
        "skipped_actions",
    )

    def __init__(self) -> None:
        self._series: dict[str, Series] = {}
        self._epochs_recorded = 0

    # ------------------------------------------------------------------
    def record_epoch(self, values: dict[str, float]) -> None:
        """Record one epoch's values; every epoch must carry the same keys."""
        if self._epochs_recorded == 0:
            for name in values:
                self._series[name] = Series(name)
        elif set(values) != set(self._series):
            missing = set(self._series) ^ set(values)
            raise SimulationError(
                f"inconsistent metric keys across epochs; difference: {sorted(missing)}"
            )
        for name, value in values.items():
            self._series[name].append(value)
        self._epochs_recorded += 1

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return self._epochs_recorded

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._series))

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            raise SimulationError(
                f"unknown metric series {name!r}; have {sorted(self._series)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def array(self, name: str) -> np.ndarray:
        """Shortcut for ``series(name).to_array()``."""
        return self.series(name).to_array()

    def as_dict(self) -> dict[str, list[float]]:
        """All series as plain lists (JSON-friendly)."""
        return {name: series.values for name, series in sorted(self._series.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsCollector(epochs={self._epochs_recorded}, series={len(self._series)})"
