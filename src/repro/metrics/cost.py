"""Replication and migration cost (paper Eq. 1).

"Replication cost relates to partition size s_i, failure rate f_i,
replication bandwidth b_i and distance d_i between the source and the
destination:  c_i = d_i · f_i · s_i / b_i."

Units: distance in kilometres, size and bandwidth in megabytes (per
epoch).  With Table I's defaults a transatlantic replication
(~6 600 km, 0.5 MB over 300 MB/epoch at f = 0.1) costs ≈ 1.1 and the
same migration (bandwidth 100 MB/epoch) ≈ 3.3 — matching the magnitude
of the paper's Fig. 5(b)/7(b) per-replica axes.

Migration uses the identical formula with the (smaller) migration
bandwidth in the denominator, which is why per-event migration is ~3x
pricier than replication over the same link.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["replication_cost", "migration_cost"]


def _check(distance_km: float, failure_rate: float, size_mb: float, bandwidth_mb: float) -> None:
    if distance_km < 0:
        raise ConfigurationError(f"distance must be >= 0, got {distance_km}")
    if not 0.0 < failure_rate < 1.0:
        raise ConfigurationError(f"failure rate must be in (0, 1), got {failure_rate}")
    if size_mb <= 0:
        raise ConfigurationError(f"size must be > 0, got {size_mb}")
    if bandwidth_mb <= 0:
        raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_mb}")


def replication_cost(
    distance_km: float, failure_rate: float, size_mb: float, bandwidth_mb: float
) -> float:
    """Eq. 1: ``c = d · f · s / b`` for one replication transfer."""
    _check(distance_km, failure_rate, size_mb, bandwidth_mb)
    return distance_km * failure_rate * size_mb / bandwidth_mb


def migration_cost(
    distance_km: float, failure_rate: float, size_mb: float, migration_bandwidth_mb: float
) -> float:
    """Eq. 1 evaluated with the migration bandwidth (Table I: 100 MB/epoch)."""
    return replication_cost(distance_km, failure_rate, size_mb, migration_bandwidth_mb)
