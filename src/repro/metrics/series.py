"""A named per-epoch metric series."""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["Series"]


class Series:
    """An append-only sequence of per-epoch float values.

    The index is the epoch: value ``k`` was recorded at epoch ``k``.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SimulationError("series name must be non-empty")
        self.name = name
        self._values: list[float] = []

    def append(self, value: float) -> None:
        """Record the value for the next epoch."""
        value = float(value)
        # ``x - x`` is 0.0 exactly for every finite float and NaN for
        # NaN/±inf — a pure-Python finiteness test, hot-path cheap.
        if value - value != 0.0:  # repro: noqa[REP004]
            raise SimulationError(
                f"series {self.name!r}: refusing non-finite value {value}"
            )
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int | slice) -> float | list[float]:
        return self._values[index]

    @property
    def values(self) -> list[float]:
        """Copy of the recorded values."""
        return list(self._values)

    def to_array(self) -> np.ndarray:
        """The series as a float array."""
        return np.asarray(self._values, dtype=np.float64)

    def cumulative(self) -> np.ndarray:
        """Running sum — the paper's "total ..." figures (5a, 6a, 7a)
        plot cumulative quantities."""
        return np.cumsum(self.to_array()) if self._values else np.array([])

    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise SimulationError(f"series {self.name!r} is empty")
        return self._values[-1]

    def mean(self, start: int = 0, stop: int | None = None) -> float:
        """Mean over ``[start, stop)`` epochs (whole series by default)."""
        window = self._values[start:stop]
        if not window:
            raise SimulationError(
                f"series {self.name!r}: empty window [{start}, {stop})"
            )
        return float(np.mean(window))

    def tail_mean(self, epochs: int) -> float:
        """Mean over the last ``epochs`` values (steady-state estimate)."""
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        return self.mean(start=max(0, len(self._values) - epochs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Series({self.name!r}, n={len(self._values)})"
