"""Response-latency model and SLA attainment.

The paper's introduction motivates everything with Amazon's SLA:
"a Service Level Agreement (SLA) should guarantee a response within
300 ms for 99.9 % of its requests at a peak client load of 500 requests
per second.  Given that the slightest outage will impact customers'
trust ... a system should be built to provide all customers with a good
experience, rather than just the majority."

This module turns the service kernel's per-query WAN distances into that
currency:

* **network time** — round trip over the origin→serving-site distance at
  fibre propagation speed (2/3 c ≈ 200 000 km/s) plus a per-WAN-hop
  forwarding overhead;
* **service time** — a constant per-request processing cost;
* **blocked queries** — an SLA miss by definition (they got no answer
  inside the epoch).

The absolute milliseconds are a model, not a measurement; what the SLA
experiment compares is *relative* attainment across the four placement
algorithms on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["LatencyModel", "LatencySummary"]

#: Signal propagation speed in optical fibre, km per millisecond.
FIBRE_KM_PER_MS: float = 200.0


@dataclass(frozen=True)
class LatencySummary:
    """Per-epoch latency roll-up."""

    #: Mean response latency over *served* queries, in milliseconds.
    mean_ms: float
    #: Fraction of all queries answered within the SLA bound
    #: (blocked queries count as misses).
    sla_attainment: float


@dataclass(frozen=True)
class LatencyModel:
    """Distance → response-time conversion.

    Parameters
    ----------
    service_ms:
        Fixed processing time per request at the serving replica.
    hop_overhead_ms:
        Per-WAN-hop forwarding/queueing overhead.
    sla_ms:
        The SLA bound (default: the intro's 300 ms).
    """

    service_ms: float = 5.0
    hop_overhead_ms: float = 2.0
    sla_ms: float = 300.0

    def __post_init__(self) -> None:
        if self.service_ms < 0 or self.hop_overhead_ms < 0:
            raise ConfigurationError("latency components must be >= 0")
        if self.sla_ms <= 0:
            raise ConfigurationError("sla_ms must be > 0")

    # ------------------------------------------------------------------
    def response_ms(self, distance_km: float, hops: float) -> float:
        """Round-trip response time for one query."""
        if distance_km < 0 or hops < 0:
            raise ConfigurationError("distance and hops must be >= 0")
        return (
            2.0 * distance_km / FIBRE_KM_PER_MS
            + hops * self.hop_overhead_ms
            + self.service_ms
        )

    def summarize_epoch(
        self,
        distance_sum_km: float,
        hop_sum: float,
        sla_miss: float,
        total_queries: float,
    ) -> LatencySummary:
        """Aggregate one epoch's kernel accumulators.

        The service kernel applies :meth:`response_ms` per absorbed flow
        (see ``serve_epoch(..., latency=...)``), so ``sla_miss`` is
        exact; the mean latency is exact too because the model is affine
        in distance and hops.
        """
        if total_queries <= 0:
            return LatencySummary(mean_ms=0.0, sla_attainment=1.0)
        mean_ms = self.response_ms(
            distance_sum_km / total_queries, hop_sum / total_queries
        )
        return LatencySummary(
            mean_ms=mean_ms,
            sla_attainment=max(0.0, 1.0 - sla_miss / total_queries),
        )
