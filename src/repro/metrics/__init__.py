"""Evaluation metrics (paper Sections II-G, II-H, III).

Every quantity the paper plots, computed from engine state each epoch:

* :mod:`repro.metrics.utilization` — average replica utilization,
  Eqs. 20–23 (Fig. 3);
* :mod:`repro.metrics.cost` — replication/migration cost, Eq. 1
  (Figs. 5, 7);
* :mod:`repro.metrics.imbalance` — load imbalance, Eqs. 24–26 (Fig. 8);
* :mod:`repro.metrics.path_length` — lookup path length (Fig. 9);
* :mod:`repro.metrics.availability_metric` — per-partition availability
  against the Eq. 14 floor (Fig. 10 context);
* :mod:`repro.metrics.series` / :mod:`repro.metrics.collector` — the
  per-epoch series store experiments read back.
"""

from .availability_metric import availability_summary
from .collector import MetricsCollector
from .cost import migration_cost, replication_cost
from .imbalance import (
    load_imbalance,
    replica_load_cv,
    replica_load_imbalance,
    server_load_imbalance,
)
from .latency import LatencyModel, LatencySummary
from .path_length import mean_path_length
from .series import Series
from .utilization import average_utilization, replica_group_utilization

__all__ = [
    "average_utilization",
    "replica_group_utilization",
    "replication_cost",
    "migration_cost",
    "load_imbalance",
    "replica_load_cv",
    "replica_load_imbalance",
    "server_load_imbalance",
    "mean_path_length",
    "LatencyModel",
    "LatencySummary",
    "availability_summary",
    "Series",
    "MetricsCollector",
]
