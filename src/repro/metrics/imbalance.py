"""Load imbalance (paper Eqs. 24–26, Fig. 8).

"To measure load balance, we assume that the workload of each virtual
node is l_i ... Standard deviation is employed, and hence, the load
imbalance L_b is  sqrt( Σ (l_i − l̄)² / n )" — the population standard
deviation of per-**virtual-node** workload.  "Obviously, the lower the
value of L_b is, the better the load balance performance."

Eq. 24 is explicitly per virtual node, i.e. per *replica*:
:func:`replica_load_imbalance` spreads each server's per-partition
served count over its replica multiplicity and takes the population std
over every replica in the system.  This is the Fig. 8 metric — it
rewards algorithms whose replicas are all comparably busy (RFH's suicide
reclaims idle ones) and punishes fleets of dead-weight copies.

:func:`server_load_imbalance` is the per-physical-server variant, kept
as a secondary diagnostic series.

**Normalisation note** (recorded in EXPERIMENTS.md): Eq. 25's absolute
standard deviation is scale-dependent — an algorithm that maintains a
large fleet of mostly-idle replicas (the random baseline) trivially
minimises it, because its per-replica mean load approaches zero.  The
paper's conclusion ("the RFH algorithm chooses a server with the least
blockability, so its load balance performance is the best") is about
how evenly the *served work* spreads over replicas, which the
coefficient of variation ``std/mean`` measures scale-freely.
:func:`replica_load_cv` is therefore the headline Fig. 8 series; the
raw Eq. 26 std is still available from :func:`replica_load_imbalance`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = [
    "load_imbalance",
    "replica_load_cv",
    "replica_load_imbalance",
    "server_load_imbalance",
]


def replica_load_imbalance(
    served_server: np.ndarray, replica_counts: np.ndarray
) -> float:
    """Eq. 26 over per-replica workloads.

    Parameters
    ----------
    served_server:
        ``(P, S)`` served-query matrix.
    replica_counts:
        ``(P, S)`` replica multiplicities; a server's served count for a
        partition is split evenly over its co-located copies.

    Returns 0.0 when the system holds no replicas.
    """
    if served_server.shape != replica_counts.shape:
        raise SimulationError(
            f"shape mismatch: served {served_server.shape} vs counts {replica_counts.shape}"
        )
    mask = replica_counts > 0
    total = int(replica_counts.sum())
    if total == 0:
        return 0.0
    per_copy = served_server[mask] / replica_counts[mask]
    weights = replica_counts[mask].astype(np.float64)
    mean = float((per_copy * weights).sum() / total)
    var = float((weights * (per_copy - mean) ** 2).sum() / total)
    return float(np.sqrt(max(0.0, var)))


def replica_load_cv(served_server: np.ndarray, replica_counts: np.ndarray) -> float:
    """Coefficient of variation of per-replica load (normalised Eq. 26).

    ``std/mean`` over every replica's served count; 0.0 when nothing was
    served (an all-idle epoch is perfectly balanced).
    """
    if served_server.shape != replica_counts.shape:
        raise SimulationError(
            f"shape mismatch: served {served_server.shape} vs counts {replica_counts.shape}"
        )
    mask = replica_counts > 0
    total = int(replica_counts.sum())
    if total == 0:
        return 0.0
    per_copy = served_server[mask] / replica_counts[mask]
    weights = replica_counts[mask].astype(np.float64)
    mean = float((per_copy * weights).sum() / total)
    if mean <= 0.0:
        return 0.0
    var = float((weights * (per_copy - mean) ** 2).sum() / total)
    return float(np.sqrt(max(0.0, var)) / mean)


def server_load_imbalance(
    load_per_server: np.ndarray, alive_mask: np.ndarray
) -> float:
    """Population standard deviation of per-alive-server load."""
    load_per_server = np.asarray(load_per_server, dtype=np.float64)
    alive_mask = np.asarray(alive_mask, dtype=bool)
    if load_per_server.shape != alive_mask.shape:
        raise SimulationError(
            f"shape mismatch: load {load_per_server.shape} vs mask {alive_mask.shape}"
        )
    alive_loads = load_per_server[alive_mask]
    if alive_loads.size == 0:
        raise SimulationError("no alive servers to measure imbalance over")
    return float(alive_loads.std())


#: Backwards-compatible alias for the Fig. 8 metric.
load_imbalance = server_load_imbalance
