"""Lookup path length (paper Fig. 9).

A query's lookup path length is the number of WAN hops it travelled
before a replica served it (0 = served in its origin datacenter).
Queries blocked at the holder are charged the full path — they paid the
latency and still failed, so discounting them would flatter overloaded
configurations.  The service kernel accumulates the hop-weighted sum;
this module just normalises.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["mean_path_length"]


def mean_path_length(hop_sum: float, query_count: float) -> float:
    """Average WAN hops per query; 0.0 for an idle epoch."""
    if hop_sum < 0 or query_count < 0:
        raise SimulationError(
            f"hop_sum and query_count must be >= 0, got {hop_sum}, {query_count}"
        )
    if query_count == 0:
        return 0.0
    return hop_sum / query_count
