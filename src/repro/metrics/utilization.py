"""Average replica utilization (paper Eqs. 20–23, Fig. 3).

Eq. 20 defines the utilization of the ``l``-th replica on node ``k`` as
the clamped fill fraction under *sequential fill*:

    U_iklt = min(1, max(0, (tr_ikt − Σ_{n<l} C_ikn) / C_ikl))

and Eq. 21 averages over every replica in the system:

    Ū_t = Σ U_iklt / Σ m_ikt .

With equal per-replica capacity ``C_k`` on a server (our model — a
server's replicas share its hardware), the sum of the sequential-fill
fractions of the ``m_ik`` replicas of partition ``i`` on server ``k``
collapses to ``served_ik / C_k`` clamped to ``m_ik``:  the service
kernel already caps ``served_ik ≤ m_ik · C_k``, so the group's summed
utilization is exactly ``served_ik / C_k``.  The average over all
replicas is then

    Ū_t = ( Σ_ik served_ik / C_k ) / ( Σ_ik m_ik )

which is what :func:`average_utilization` evaluates, fully vectorised.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["replica_group_utilization", "average_utilization"]


def replica_group_utilization(
    served: float, count: int, capacity: float
) -> float:
    """Summed Eq. 20 utilization of one server's replica group.

    ``served`` queries spread sequentially over ``count`` replicas of
    per-replica ``capacity``; the result is in ``[0, count]``.
    """
    if capacity <= 0:
        raise SimulationError(f"capacity must be > 0, got {capacity}")
    if count < 1:
        raise SimulationError(f"count must be >= 1, got {count}")
    if served < 0:
        raise SimulationError(f"served must be >= 0, got {served}")
    return min(float(count), served / capacity)


def average_utilization(
    served_server: np.ndarray,
    replica_counts: np.ndarray,
    capacities: np.ndarray,
) -> float:
    """Eq. 21: mean utilization over every replica in the system.

    Parameters
    ----------
    served_server:
        ``(P, S)`` served-query matrix from the service kernel.
    replica_counts:
        ``(P, S)`` integer replica multiplicities ``m_ik``.
    capacities:
        Length-``S`` per-replica capacities ``C_k``.

    Returns 0.0 when the system holds no replicas (pre-bootstrap).
    """
    if served_server.shape != replica_counts.shape:
        raise SimulationError(
            f"shape mismatch: served {served_server.shape} vs counts {replica_counts.shape}"
        )
    if capacities.shape != (served_server.shape[1],):
        raise SimulationError(
            f"capacities must have length {served_server.shape[1]}, got {capacities.shape}"
        )
    total_replicas = replica_counts.sum()
    if total_replicas == 0:
        return 0.0
    mask = replica_counts > 0
    if np.any((capacities <= 0) & np.any(mask, axis=0)):
        raise SimulationError("replica-holding servers must have positive capacity")
    cols = np.broadcast_to(capacities, served_server.shape)
    fills = np.divide(
        served_server, cols, out=np.zeros_like(served_server), where=mask
    )
    # The kernel guarantees served <= m * C; clip guards float fuzz only.
    fills = np.minimum(fills, replica_counts)
    return float(fills.sum() / total_replicas)
