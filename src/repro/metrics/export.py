"""Metric-series export: CSV and JSON.

Experiments end in a :class:`~repro.metrics.collector.MetricsCollector`;
these helpers dump it for external analysis (spreadsheets, notebooks,
plotting toolchains) with one row per epoch and one column per series,
plus round-tripping JSON for archival.
"""

from __future__ import annotations

import csv
import json
import pathlib

from ..errors import SimulationError
from .collector import MetricsCollector

__all__ = ["to_csv", "from_csv", "to_json", "from_json"]


def to_csv(metrics: MetricsCollector, path: str | pathlib.Path) -> None:
    """Write one row per epoch, one column per series (plus ``epoch``)."""
    if metrics.num_epochs == 0:
        raise SimulationError("refusing to export an empty collector")
    names = metrics.names()
    with open(pathlib.Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("epoch", *names))
        columns = [metrics.series(name).values for name in names]
        for epoch in range(metrics.num_epochs):
            writer.writerow((epoch, *(column[epoch] for column in columns)))


def from_csv(path: str | pathlib.Path) -> MetricsCollector:
    """Rebuild a collector from :func:`to_csv` output."""
    with open(pathlib.Path(path), newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SimulationError(f"{path} is empty, not an exported CSV") from None
        if not header or header[0] != "epoch":
            raise SimulationError(
                f"{path} is not an exported metrics CSV (header {header!r})"
            )
        names = header[1:]
        collector = MetricsCollector()
        for row in reader:
            if len(row) != len(header):
                raise SimulationError(
                    f"{path}: row has {len(row)} cells for {len(header)} columns"
                )
            collector.record_epoch(
                {name: float(cell) for name, cell in zip(names, row[1:])}
            )
    if collector.num_epochs == 0:
        raise SimulationError(f"{path} holds a header but no epochs")
    return collector


def to_json(metrics: MetricsCollector, path: str | pathlib.Path) -> None:
    """Write ``{"epochs": N, "series": {name: [...]}}`` (newline-terminated)."""
    if metrics.num_epochs == 0:
        raise SimulationError("refusing to export an empty collector")
    payload = {"epochs": metrics.num_epochs, "series": metrics.as_dict()}
    pathlib.Path(path).write_text(json.dumps(payload, indent=1) + "\n")


def from_json(path: str | pathlib.Path) -> MetricsCollector:
    """Rebuild a collector from :func:`to_json` output."""
    payload = json.loads(pathlib.Path(path).read_text())
    if "series" not in payload or "epochs" not in payload:
        raise SimulationError(f"{path} is not an exported metrics file")
    series: dict[str, list[float]] = payload["series"]
    epochs = int(payload["epochs"])
    for name, values in series.items():
        if len(values) != epochs:
            raise SimulationError(
                f"series {name!r} has {len(values)} values for {epochs} epochs"
            )
    collector = MetricsCollector()
    for epoch in range(epochs):
        collector.record_epoch({name: series[name][epoch] for name in series})
    return collector
