"""System availability against the Eq. 14 floor.

Summarises the replica map into the quantities the resilience
experiments (Fig. 10) track: how many partitions currently satisfy the
minimum replica count, the mean per-partition availability under the
independent-failure model (``1 − f^r``), and how many partitions are in
the lost state (no copy anywhere, awaiting restoration).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.replicas import ReplicaMap
from ..core.availability import availability_at_least_one

__all__ = ["AvailabilitySummary", "availability_summary"]


@dataclass(frozen=True)
class AvailabilitySummary:
    """Per-epoch availability roll-up."""

    #: Fraction of partitions with replica count >= r_min.
    fraction_meeting_floor: float
    #: Mean of ``1 − f^r`` over all partitions (lost partitions count 0).
    mean_availability: float
    #: Minimum per-partition availability this epoch.
    min_availability: float
    #: Number of partitions with zero copies.
    lost_partitions: int


def availability_summary(
    replicas: ReplicaMap, failure_rate: float, rmin: int
) -> AvailabilitySummary:
    """Evaluate the summary over the current replica map."""
    counts = replicas.per_partition_counts()
    availabilities = [
        availability_at_least_one(r, failure_rate) if r > 0 else 0.0 for r in counts
    ]
    meeting = sum(1 for r in counts if r >= rmin)
    return AvailabilitySummary(
        fraction_meeting_floor=meeting / len(counts),
        mean_availability=sum(availabilities) / len(availabilities),
        min_availability=min(availabilities),
        lost_partitions=sum(1 for r in counts if r == 0),
    )
