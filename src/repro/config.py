"""Simulation configuration: Table I of the paper, as frozen dataclasses.

The paper's evaluation (Section III-A, Table I) fixes the environment and
the RFH control parameters.  This module captures every one of those knobs
in three immutable dataclasses plus a composite :class:`SimulationConfig`:

* :class:`RFHParameters` — the algorithm constants ``alpha``..``mu`` plus
  the availability floor and the storage gate ``phi`` (Eq. 19).
* :class:`ClusterParameters` — datacenter/room/rack/server shape and the
  per-server capacity draws.
* :class:`WorkloadParameters` — Poisson arrival rate, partition count and
  size, and the Zipf skew used for partition popularity.

All values default to Table I.  Validation happens eagerly in
``__post_init__`` so an out-of-range parameter raises
:class:`~repro.errors.ConfigurationError` before any simulation starts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigurationError

__all__ = [
    "RFHParameters",
    "ClusterParameters",
    "WorkloadParameters",
    "SimulationConfig",
    "DEFAULT_EPOCH_SECONDS",
]

#: Length of one simulation epoch in seconds (Table I: "Epoch  10 seconds").
DEFAULT_EPOCH_SECONDS: float = 10.0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class RFHParameters:
    """Control constants of the RFH algorithm (Table I, Eqs. 10-19).

    Attributes
    ----------
    alpha:
        EWMA smoothing factor of Eqs. (10)/(11).  The paper's update is
        ``x_t = alpha * x_{t-1} + (1 - alpha) * x_t_raw`` so *smaller*
        alpha reacts *faster*.
    beta:
        Holder-overload multiplier of Eq. (12): the primary partition
        holder is overloaded when its traffic exceeds ``beta`` times the
        smoothed system-average query rate.
    gamma:
        Traffic-hub multiplier of Eq. (13): a forwarding node whose
        traffic exceeds ``gamma`` times the average query rate marks
        itself as a traffic hub and volunteers for replication.
    delta:
        Suicide multiplier of Eq. (15): a replica whose traffic falls
        below ``delta`` times the average query rate offers to remove
        itself (subject to the availability floor).
    mu:
        Migration-benefit multiplier of Eq. (16): migrate a replica from
        node *k* to hub *j* only when ``tr_j - tr_k >= mu * mean(tr)``.
    phi:
        Storage gate of Eq. (19): a server whose storage utilisation is
        at or above ``phi`` refuses replication/migration requests.
    failure_rate:
        Per-replica failure probability ``f`` used by the availability
        bound (Eq. 14) and by the replication-cost formula (Eq. 1).
    min_availability:
        Expected availability floor ``A_expect`` of Eq. (14).
    hub_fanout:
        The holder chooses among this many top-traffic hubs ("it will
        choose a node among the 3 nodes with the largest amount of
        traffic", Section II-E).
    """

    alpha: float = 0.2
    beta: float = 2.0
    gamma: float = 1.5
    delta: float = 0.2
    mu: float = 1.0
    phi: float = 0.70
    failure_rate: float = 0.1
    min_availability: float = 0.8
    hub_fanout: int = 3

    def __post_init__(self) -> None:
        _require(0.0 < self.alpha < 1.0, f"alpha must be in (0, 1), got {self.alpha}")
        _require(self.beta > 1.0, f"beta must be > 1, got {self.beta}")
        _require(self.gamma > 1.0, f"gamma must be > 1, got {self.gamma}")
        _require(0.0 < self.delta < 1.0, f"delta must be in (0, 1), got {self.delta}")
        _require(self.mu > 0.0, f"mu must be > 0, got {self.mu}")
        _require(0.0 < self.phi <= 1.0, f"phi must be in (0, 1], got {self.phi}")
        _require(
            0.0 < self.failure_rate < 1.0,
            f"failure_rate must be in (0, 1), got {self.failure_rate}",
        )
        _require(
            0.0 < self.min_availability < 1.0,
            f"min_availability must be in (0, 1), got {self.min_availability}",
        )
        _require(self.hub_fanout >= 1, f"hub_fanout must be >= 1, got {self.hub_fanout}")


@dataclass(frozen=True)
class ClusterParameters:
    """Shape and capacity of the physical substrate (Table I, Section III-A).

    The paper: "Initially, each datacenter contains one room and there are
    two racks in each room.  For each rack, it consists of 5 servers ...
    for every server, their capacities are different from each other."

    Heterogeneity is modelled as a uniform draw in
    ``[base * (1 - jitter), base * (1 + jitter)]`` from a seeded stream, so
    identical seeds give identical clusters.
    """

    rooms_per_datacenter: int = 1
    racks_per_room: int = 2
    servers_per_rack: int = 5
    #: Maximum server storage capacity (Table I: 10 GB), in megabytes.
    storage_capacity_mb: float = 10_240.0
    #: Replication bandwidth per server (Table I: 300 MB/epoch).
    replication_bandwidth_mb: float = 300.0
    #: Migration bandwidth per server (Table I: 100 MB/epoch).
    migration_bandwidth_mb: float = 100.0
    #: Mean per-replica processing capacity in queries/epoch.  The paper
    #: only says servers have "a fixed ... processing capacity to serve a
    #: certain number of queries in each epoch"; the default is calibrated
    #: so the default workload saturates at roughly the paper's replica
    #: counts (~4 replicas/partition for RFH, see DESIGN.md).
    replica_capacity_mean: float = 2.0
    #: Relative half-width of the uniform capacity jitter.
    capacity_jitter: float = 0.5
    #: Concurrent service slots per server, used by the M/G/c blocking
    #: probability model (Eq. 18).
    service_slots: int = 8

    def __post_init__(self) -> None:
        _require(self.rooms_per_datacenter >= 1, "rooms_per_datacenter must be >= 1")
        _require(self.racks_per_room >= 1, "racks_per_room must be >= 1")
        _require(self.servers_per_rack >= 1, "servers_per_rack must be >= 1")
        _require(self.storage_capacity_mb > 0, "storage_capacity_mb must be > 0")
        _require(self.replication_bandwidth_mb > 0, "replication_bandwidth_mb must be > 0")
        _require(self.migration_bandwidth_mb > 0, "migration_bandwidth_mb must be > 0")
        _require(self.replica_capacity_mean > 0, "replica_capacity_mean must be > 0")
        _require(
            0.0 <= self.capacity_jitter < 1.0,
            f"capacity_jitter must be in [0, 1), got {self.capacity_jitter}",
        )
        _require(self.service_slots >= 1, "service_slots must be >= 1")

    @property
    def servers_per_datacenter(self) -> int:
        """Number of servers hosted by one datacenter."""
        return self.rooms_per_datacenter * self.racks_per_room * self.servers_per_rack


@dataclass(frozen=True)
class WorkloadParameters:
    """Query-workload knobs (Table I).

    ``queries_per_epoch_mean`` is the Poisson mean λ; partition popularity
    follows a truncated Zipf with exponent ``zipf_exponent`` ("a hot
    partition, which is frequently requested", Section II-A).
    """

    queries_per_epoch_mean: float = 300.0
    num_partitions: int = 64
    partition_size_mb: float = 0.5  # 512 KB
    zipf_exponent: float = 0.9

    def __post_init__(self) -> None:
        _require(self.queries_per_epoch_mean > 0, "queries_per_epoch_mean must be > 0")
        _require(self.num_partitions >= 1, "num_partitions must be >= 1")
        _require(self.partition_size_mb > 0, "partition_size_mb must be > 0")
        _require(self.zipf_exponent >= 0, "zipf_exponent must be >= 0")


@dataclass(frozen=True)
class SimulationConfig:
    """Composite, immutable configuration for a full simulation run."""

    rfh: RFHParameters = field(default_factory=RFHParameters)
    cluster: ClusterParameters = field(default_factory=ClusterParameters)
    workload: WorkloadParameters = field(default_factory=WorkloadParameters)
    epoch_seconds: float = DEFAULT_EPOCH_SECONDS
    seed: int = 42

    def __post_init__(self) -> None:
        _require(self.epoch_seconds > 0, "epoch_seconds must be > 0")
        _require(self.seed >= 0, "seed must be >= 0")

    def replace(self, **overrides: object) -> "SimulationConfig":
        """Return a copy with top-level fields replaced.

        Nested parameter groups can be replaced wholesale, e.g.::

            cfg.replace(rfh=RFHParameters(alpha=0.5))
        """
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]
